//! Hard-fault descriptions and the injection plan consulted by the
//! simulator's decode and execute stages.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A structure in the core that can harbor a permanent fault.
///
/// The granularity matches the paper's spatial-diversity argument: an
/// instruction is processed by exactly one *frontend way* (fetch slot,
/// decoder, rename port) and one *backend way* (functional-unit instance
/// with its operand-read and writeback paths), so faults are attached to
/// ways. The shared issue queue's payload RAM is its own site class
/// (§4.5's residual vulnerability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The fetch/decode/rename path of frontend way `way` (0-based).
    /// Corrupts the raw instruction word of every instruction that flows
    /// through the way while the trigger matches.
    Frontend {
        /// Frontend way index.
        way: usize,
    },
    /// The execute path of the backend way with global index `way`
    /// (a specific functional-unit instance, including cache ports).
    /// Corrupts the computed result (or the resolved target of a control
    /// instruction, or the effective address of a memory operation).
    Backend {
        /// Global backend-way index.
        way: usize,
    },
    /// One entry of the issue-queue payload RAM. Corrupts the instruction
    /// word of whichever instruction occupies the entry, in *both* threads
    /// if they happen to reuse it — the escape the paper closes by
    /// splitting the payload RAM per thread.
    PayloadRam {
        /// Issue-queue entry index.
        entry: usize,
    },
    /// One set of the L1 data-cache data array (uncore). Corrupts the
    /// value of every load whose address maps to the set, *before* the
    /// leading thread captures it into the LVQ — so both threads agree on
    /// the corrupt value unless an ECC layer intervenes.
    CacheData {
        /// Cache set index.
        index: usize,
    },
    /// One set of the L1 data-cache tag array (uncore). A tag defect can
    /// only force spurious misses here (the model never fabricates false
    /// hits), so it perturbs latency without corrupting architectural
    /// state.
    CacheTag {
        /// Cache set index.
        index: usize,
    },
    /// One entry of the store buffer holding leading stores awaiting
    /// their trailing check. Corrupts the buffered store data, so the
    /// pair check sees a leading/trailing disagreement.
    StoreBuffer {
        /// Store-buffer entry index.
        entry: usize,
    },
    /// One entry of the DTQ payload RAM carrying the pristine instruction
    /// word to the trailing thread. Corrupts only the trailing copy —
    /// memory is driven by the leading thread, so this can never escape.
    DtqPayload {
        /// DTQ entry index.
        entry: usize,
    },
    /// One entry of the LVQ payload RAM holding captured load values for
    /// the trailing thread. Without ECC this corrupts the trailing load
    /// value (detected by the pair checks); with SEC-DED ECC enabled a
    /// single-bit defect is corrected and a multi-bit one raises a DUE.
    LvqPayload {
        /// LVQ entry index.
        entry: usize,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Frontend { way } => write!(f, "frontend way {way}"),
            FaultSite::Backend { way } => write!(f, "backend way {way}"),
            FaultSite::PayloadRam { entry } => write!(f, "payload RAM entry {entry}"),
            FaultSite::CacheData { index } => write!(f, "L1D data array set {index}"),
            FaultSite::CacheTag { index } => write!(f, "L1D tag array set {index}"),
            FaultSite::StoreBuffer { entry } => write!(f, "store buffer entry {entry}"),
            FaultSite::DtqPayload { entry } => write!(f, "DTQ payload entry {entry}"),
            FaultSite::LvqPayload { entry } => write!(f, "LVQ payload entry {entry}"),
        }
    }
}

/// The temporal model of a fault plan: when, relative to the arming
/// cycle, the plan's faults are physically present.
///
/// Hard faults are the paper's subject — permanent from arming onwards.
/// Transient and intermittent faults extend the universe per the uncore
/// soft-error literature: a transient is a single-cycle upset, an
/// intermittent fault cycles between broken and healthy with a duty
/// cycle (burst faults from marginal hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultKind {
    /// Permanent: active on every cycle at or after arming.
    #[default]
    Hard,
    /// Single-cycle upset: active only on the arming cycle itself.
    Transient,
    /// Duty-cycled burst: starting at the arming cycle, active for the
    /// first `on` cycles of every `period`-cycle window.
    Intermittent {
        /// Window length in cycles (≥ 1).
        period: u64,
        /// Active cycles at the start of each window (1 ..= period).
        on: u64,
    },
}

impl FaultKind {
    /// True if a fault of this kind is physically present at `cycle`,
    /// given the plan armed at `arm`.
    pub fn active(self, cycle: u64, arm: u64) -> bool {
        if cycle < arm {
            return false;
        }
        match self {
            FaultKind::Hard => true,
            FaultKind::Transient => cycle == arm,
            FaultKind::Intermittent { period, on } => {
                debug_assert!(period >= 1 && (1..=period).contains(&on));
                (cycle - arm) % period < on
            }
        }
    }

    /// Short lower-case name used in reports and env parsing.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Hard => "hard",
            FaultKind::Transient => "transient",
            FaultKind::Intermittent { .. } => "intermittent",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Intermittent { period, on } => {
                write!(f, "intermittent({on}/{period})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// How a fault transforms a value passing through the faulty structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Bit `bit` reads as `value` regardless of what was written.
    StuckAt {
        /// Bit position, `0..64`.
        bit: u8,
        /// The stuck level.
        value: bool,
    },
    /// Bit `bit` inverts on every pass.
    FlipBit {
        /// Bit position, `0..64`.
        bit: u8,
    },
    /// The value is XORed with `mask` (a multi-bit defect).
    XorMask {
        /// Bits to invert.
        mask: u64,
    },
}

impl Corruption {
    /// Applies the corruption to a value.
    pub fn apply(self, v: u64) -> u64 {
        match self {
            Corruption::StuckAt { bit, value } => {
                if value {
                    v | (1 << bit)
                } else {
                    v & !(1 << bit)
                }
            }
            Corruption::FlipBit { bit } => v ^ (1 << bit),
            Corruption::XorMask { mask } => v ^ mask,
        }
    }
}

/// The machine-state condition under which a fault manifests.
///
/// `Always` models a gross defect. `ValuePattern` models marginal hardware
/// that fails only under specific signal patterns — exactly the class of
/// error the paper argues escapes manufacturing test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// Fires on every value.
    Always,
    /// Fires only when `(value & mask) == pattern`.
    ValuePattern {
        /// Bits that participate in the condition.
        mask: u64,
        /// Required value of those bits.
        pattern: u64,
    },
}

impl Trigger {
    /// True if the fault fires for `v`.
    pub fn matches(self, v: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::ValuePattern { mask, pattern } => (v & mask) == pattern,
        }
    }
}

/// One permanent fault: a site, a corruption, and a trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HardFault {
    /// Where the fault lives.
    pub site: FaultSite,
    /// What it does to values.
    pub corruption: Corruption,
    /// When it fires.
    pub trigger: Trigger,
}

impl HardFault {
    /// An always-firing stuck-at-1 fault on bit 0 — the simplest defect,
    /// handy for tests and examples.
    pub fn stuck_bit(site: FaultSite, bit: u8) -> HardFault {
        HardFault { site, corruption: Corruption::StuckAt { bit, value: true }, trigger: Trigger::Always }
    }

    /// Applies the fault to `v` if the trigger matches.
    pub fn apply(&self, v: u64) -> u64 {
        if self.trigger.matches(v) {
            self.corruption.apply(v)
        } else {
            v
        }
    }
}

impl fmt::Display for HardFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} at {}", self.corruption, self.site)
    }
}

/// The set of faults active in one simulation, with per-site lookups used
/// by the pipeline's decode and execute hooks.
///
/// A plan can be *armed* at a cycle: before `arm_cycle` the hardware is
/// healthy and every corruption hook is inert. This models wear-out
/// defects that develop mid-run, and it is what makes the fault-free
/// prefix of an injection run shareable — every plan for the same
/// workload is identical (empty, effectively) until its arming point.
///
/// The plan also counts its own use: every hook application where a fault
/// matched the site bumps [`FaultPlan::exercised`], and every application
/// that actually *changed* the value bumps [`FaultPlan::activations`].
/// While `activations() == 0` the faulted run is bit-identical to the
/// fault-free run — the invariant the campaign's early-exit layer builds
/// on. The counters are atomics only so a plan stays `Sync` inside
/// campaign-shared snapshots; each simulation mutates its own plan from
/// one thread.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<HardFault>,
    kind: FaultKind,
    arm_cycle: u64,
    /// The simulator's current cycle, published by [`FaultPlan::
    /// observe_cycle`] once per step so the temporal model can decide
    /// whether the faults are present when a hook fires. An atomic only
    /// for the same `Sync` reason as the counters.
    now: AtomicU64,
    exercised: AtomicU64,
    activations: AtomicU64,
}

impl Clone for FaultPlan {
    /// Clones the plan *including* the current counter values, so a
    /// snapshot/restore boundary is invisible to the early-exit layer.
    fn clone(&self) -> FaultPlan {
        FaultPlan {
            faults: self.faults.clone(),
            kind: self.kind,
            arm_cycle: self.arm_cycle,
            now: AtomicU64::new(self.now.load(Ordering::Relaxed)),
            exercised: AtomicU64::new(self.exercised()),
            activations: AtomicU64::new(self.activations()),
        }
    }
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(fault: HardFault) -> FaultPlan {
        FaultPlan { faults: vec![fault], ..FaultPlan::default() }
    }

    /// Defers the plan's faults until simulation cycle `cycle` (a wear-out
    /// fault). The default arming cycle is 0: faulty from power-on.
    pub fn arm_at(mut self, cycle: u64) -> FaultPlan {
        self.arm_cycle = cycle;
        self
    }

    /// The cycle at which the faults begin to manifest.
    pub fn arm_cycle(&self) -> u64 {
        self.arm_cycle
    }

    /// Sets the plan's temporal model (default: [`FaultKind::Hard`]).
    pub fn with_kind(mut self, kind: FaultKind) -> FaultPlan {
        if let FaultKind::Intermittent { period, on } = kind {
            assert!(period >= 1 && (1..=period).contains(&on), "intermittent duty cycle must satisfy 1 <= on <= period");
        }
        self.kind = kind;
        self
    }

    /// The plan's temporal model.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Publishes the simulator's current cycle. The core calls this once
    /// at the top of every step; hooks firing later in the same cycle
    /// consult it to decide whether the faults are physically present
    /// under the plan's temporal model.
    pub fn observe_cycle(&self, cycle: u64) {
        self.now.store(cycle, Ordering::Relaxed);
    }

    /// Adds a fault.
    pub fn add(&mut self, fault: HardFault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// All faults.
    pub fn faults(&self) -> &[HardFault] {
        &self.faults
    }

    /// True if no faults are active.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Hook applications (post-arming) where a fault matched the site —
    /// how often the defective structure was read while defective.
    pub fn exercised(&self) -> u64 {
        self.exercised.load(Ordering::Relaxed)
    }

    /// Hook applications that changed the value passing through. While
    /// this is zero the run is bit-identical to its fault-free twin: the
    /// hooks are the only nondeterminism a plan introduces, and an
    /// application that returns its input leaves no trace.
    pub fn activations(&self) -> u64 {
        self.activations.load(Ordering::Relaxed)
    }

    /// Zeroes both counters (a fork installing this plan starts fresh).
    pub fn reset_counters(&self) {
        self.exercised.store(0, Ordering::Relaxed);
        self.activations.store(0, Ordering::Relaxed);
    }

    /// Applies every fault at `site` to `v`, counting matches and
    /// value changes.
    ///
    /// Under a non-hard temporal model the faults are only present on
    /// the cycles [`FaultKind::active`] admits: a dormant structure is
    /// momentarily healthy, so the read neither exercises nor activates
    /// anything.
    fn apply_site(&self, site: FaultSite, v: u64) -> u64 {
        if !self.kind.active(self.now.load(Ordering::Relaxed), self.arm_cycle) {
            return v;
        }
        let mut out = v;
        for f in &self.faults {
            if f.site == site {
                self.exercised.fetch_add(1, Ordering::Relaxed);
                out = f.apply(out);
            }
        }
        if out != v {
            self.activations.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Applies every fault on frontend way `way` to an instruction word.
    pub fn corrupt_frontend(&self, way: usize, word: u32) -> u32 {
        self.apply_site(FaultSite::Frontend { way }, word as u64) as u32
    }

    /// Applies every fault on backend way `way` to a computed value.
    pub fn corrupt_backend(&self, way: usize, value: u64) -> u64 {
        self.apply_site(FaultSite::Backend { way }, value)
    }

    /// Applies every fault on payload-RAM entry `entry` to a 64-bit value
    /// (the simulator models payload corruption as corrupting the computed
    /// result of whichever instruction occupies the defective entry).
    pub fn corrupt_payload_value(&self, entry: usize, value: u64) -> u64 {
        self.apply_site(FaultSite::PayloadRam { entry }, value)
    }

    /// Applies every fault on payload-RAM entry `entry` to an instruction
    /// word.
    pub fn corrupt_payload(&self, entry: usize, word: u32) -> u32 {
        self.apply_site(FaultSite::PayloadRam { entry }, word as u64) as u32
    }

    /// Applies every fault on L1D data-array set `index` to a load value
    /// read from the cache (before LVQ capture).
    pub fn corrupt_cache_data(&self, index: usize, value: u64) -> u64 {
        self.apply_site(FaultSite::CacheData { index }, value)
    }

    /// Applies every fault on store-buffer entry `entry` to buffered
    /// store data.
    pub fn corrupt_store_buffer(&self, entry: usize, value: u64) -> u64 {
        self.apply_site(FaultSite::StoreBuffer { entry }, value)
    }

    /// Applies every fault on DTQ payload entry `entry` to the carried
    /// instruction word.
    pub fn corrupt_dtq_payload(&self, entry: usize, word: u32) -> u32 {
        self.apply_site(FaultSite::DtqPayload { entry }, word as u64) as u32
    }

    /// Applies every fault on LVQ payload entry `entry` to the captured
    /// load value read by the trailing thread.
    pub fn corrupt_lvq_payload(&self, entry: usize, value: u64) -> u64 {
        self.apply_site(FaultSite::LvqPayload { entry }, value)
    }

    /// True if a fault on L1D *tag* set `index` is physically present
    /// right now (tag faults only perturb latency, so the hook is a
    /// predicate rather than a value transform). Counts as exercised —
    /// the defective set was consulted.
    pub fn cache_tag_miss(&self, index: usize) -> bool {
        if !self.kind.active(self.now.load(Ordering::Relaxed), self.arm_cycle) {
            return false;
        }
        let hit = self.faults.iter().any(|f| f.site == FaultSite::CacheTag { index });
        if hit {
            // A forced miss perturbs timing, so the run is no longer
            // bit-identical to its fault-free twin: count it as an
            // activation so the convergence seal stays conservative.
            self.exercised.fetch_add(1, Ordering::Relaxed);
            self.activations.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// True if any fault targets the given frontend way.
    pub fn has_frontend(&self, way: usize) -> bool {
        self.faults.iter().any(|f| f.site == FaultSite::Frontend { way })
    }

    /// True if any fault targets the given backend way.
    pub fn has_backend(&self, way: usize) -> bool {
        self.faults.iter().any(|f| f.site == FaultSite::Backend { way })
    }

    /// True if any fault targets the given site.
    pub fn has_site(&self, site: FaultSite) -> bool {
        self.faults.iter().any(|f| f.site == site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_semantics() {
        let c = Corruption::StuckAt { bit: 3, value: true };
        assert_eq!(c.apply(0), 8);
        assert_eq!(c.apply(8), 8);
        let c = Corruption::StuckAt { bit: 3, value: false };
        assert_eq!(c.apply(0xf), 0x7);
        assert_eq!(c.apply(0x7), 0x7);
    }

    #[test]
    fn flip_and_mask() {
        assert_eq!(Corruption::FlipBit { bit: 0 }.apply(0), 1);
        assert_eq!(Corruption::FlipBit { bit: 0 }.apply(1), 0);
        assert_eq!(Corruption::XorMask { mask: 0xff }.apply(0x0f), 0xf0);
    }

    #[test]
    fn pattern_trigger_is_selective() {
        let f = HardFault {
            site: FaultSite::Backend { way: 0 },
            corruption: Corruption::FlipBit { bit: 8 },
            trigger: Trigger::ValuePattern { mask: 0xf, pattern: 0xa },
        };
        assert_eq!(f.apply(0x1a), 0x11a, "pattern matches: corrupted");
        assert_eq!(f.apply(0x1b), 0x1b, "pattern misses: clean");
    }

    #[test]
    fn plan_routes_by_site() {
        let mut plan = FaultPlan::new();
        plan.add(HardFault::stuck_bit(FaultSite::Backend { way: 2 }, 0));
        plan.add(HardFault::stuck_bit(FaultSite::Frontend { way: 1 }, 4));
        assert_eq!(plan.corrupt_backend(2, 0), 1);
        assert_eq!(plan.corrupt_backend(3, 0), 0, "other ways unaffected");
        assert_eq!(plan.corrupt_frontend(1, 0), 16);
        assert_eq!(plan.corrupt_frontend(0, 0), 0);
        assert!(plan.has_backend(2) && !plan.has_backend(0));
        assert!(plan.has_frontend(1) && !plan.has_frontend(3));
    }

    #[test]
    fn multiple_faults_compose() {
        let mut plan = FaultPlan::new();
        plan.add(HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 0));
        plan.add(HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 1));
        assert_eq!(plan.corrupt_backend(0, 0), 3);
    }

    #[test]
    fn payload_site() {
        let plan = FaultPlan::single(HardFault::stuck_bit(FaultSite::PayloadRam { entry: 7 }, 2));
        assert_eq!(plan.corrupt_payload(7, 0), 4);
        assert_eq!(plan.corrupt_payload(6, 0), 0);
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.corrupt_backend(0, 42), 42);
        assert_eq!(plan.corrupt_frontend(0, 42), 42);
    }

    #[test]
    fn arming_defaults_to_power_on() {
        assert_eq!(FaultPlan::new().arm_cycle(), 0);
        let f = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 0);
        assert_eq!(FaultPlan::single(f).arm_cycle(), 0);
        let armed = FaultPlan::single(f).arm_at(12_345);
        assert_eq!(armed.arm_cycle(), 12_345);
        assert!(!armed.is_empty(), "arming does not change the fault set");
    }

    #[test]
    fn counters_distinguish_exercise_from_activation() {
        // Stuck-at-1 on bit 3: reading a value whose bit 3 is already 1
        // exercises the fault without activating it.
        let plan = FaultPlan::single(HardFault::stuck_bit(FaultSite::Backend { way: 1 }, 3));
        assert_eq!((plan.exercised(), plan.activations()), (0, 0));
        assert_eq!(plan.corrupt_backend(0, 0), 0, "other way: no exercise");
        assert_eq!((plan.exercised(), plan.activations()), (0, 0));
        assert_eq!(plan.corrupt_backend(1, 8), 8, "bit already stuck level");
        assert_eq!((plan.exercised(), plan.activations()), (1, 0));
        assert_eq!(plan.corrupt_backend(1, 0), 8, "value changed");
        assert_eq!((plan.exercised(), plan.activations()), (2, 1));

        let copy = plan.clone();
        assert_eq!((copy.exercised(), copy.activations()), (2, 1), "clone keeps counts");
        plan.reset_counters();
        assert_eq!((plan.exercised(), plan.activations()), (0, 0));
        assert_eq!((copy.exercised(), copy.activations()), (2, 1), "copies are independent");
    }

    #[test]
    fn counters_cover_every_hook_and_mismatched_triggers() {
        let mut plan = FaultPlan::new();
        plan.add(HardFault {
            site: FaultSite::Frontend { way: 0 },
            corruption: Corruption::FlipBit { bit: 1 },
            trigger: Trigger::ValuePattern { mask: 0xf, pattern: 0xa },
        });
        plan.add(HardFault::stuck_bit(FaultSite::PayloadRam { entry: 2 }, 0));
        // Trigger miss: exercised (the defective structure was read) but
        // the value passed through unchanged.
        assert_eq!(plan.corrupt_frontend(0, 0xb), 0xb);
        assert_eq!((plan.exercised(), plan.activations()), (1, 0));
        assert_eq!(plan.corrupt_frontend(0, 0xa), 0x8);
        assert_eq!((plan.exercised(), plan.activations()), (2, 1));
        assert_eq!(plan.corrupt_payload_value(2, 0), 1);
        assert_eq!(plan.corrupt_payload(2, 1), 1);
        assert_eq!((plan.exercised(), plan.activations()), (4, 2));
    }

    #[test]
    fn display_forms() {
        let f = HardFault::stuck_bit(FaultSite::Frontend { way: 2 }, 0);
        assert!(f.to_string().contains("frontend way 2"));
        assert!(FaultSite::PayloadRam { entry: 3 }.to_string().contains("entry 3"));
        assert!(FaultSite::LvqPayload { entry: 9 }.to_string().contains("LVQ payload entry 9"));
        assert_eq!(FaultKind::Hard.to_string(), "hard");
        assert_eq!(FaultKind::Transient.to_string(), "transient");
        assert_eq!(
            FaultKind::Intermittent { period: 64, on: 8 }.to_string(),
            "intermittent(8/64)"
        );
    }

    #[test]
    fn kind_activity_windows() {
        // Hard: on from arming forever.
        assert!(!FaultKind::Hard.active(9, 10));
        assert!(FaultKind::Hard.active(10, 10));
        assert!(FaultKind::Hard.active(1_000_000, 10));
        // Transient: exactly the arming cycle.
        assert!(!FaultKind::Transient.active(9, 10));
        assert!(FaultKind::Transient.active(10, 10));
        assert!(!FaultKind::Transient.active(11, 10));
        // Intermittent 2-on / 5-period windows starting at arm.
        let i = FaultKind::Intermittent { period: 5, on: 2 };
        assert!(!i.active(9, 10));
        assert!(i.active(10, 10) && i.active(11, 10));
        assert!(!i.active(12, 10) && !i.active(14, 10));
        assert!(i.active(15, 10) && i.active(16, 10));
        assert!(!i.active(17, 10));
    }

    #[test]
    fn transient_plan_fires_only_on_the_arming_cycle() {
        let plan = FaultPlan::single(HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 0))
            .arm_at(100)
            .with_kind(FaultKind::Transient);
        plan.observe_cycle(99);
        assert_eq!(plan.corrupt_backend(0, 0), 0, "pre-arm: healthy");
        assert_eq!((plan.exercised(), plan.activations()), (0, 0));
        plan.observe_cycle(100);
        assert_eq!(plan.corrupt_backend(0, 0), 1, "arming cycle: upset");
        assert_eq!((plan.exercised(), plan.activations()), (1, 1));
        plan.observe_cycle(101);
        assert_eq!(plan.corrupt_backend(0, 0), 0, "one cycle later: healthy again");
        assert_eq!((plan.exercised(), plan.activations()), (1, 1), "dormant reads count nothing");
    }

    #[test]
    fn intermittent_plan_follows_the_duty_cycle() {
        let plan = FaultPlan::single(HardFault::stuck_bit(FaultSite::LvqPayload { entry: 3 }, 2))
            .arm_at(50)
            .with_kind(FaultKind::Intermittent { period: 4, on: 1 });
        for cycle in 48..58 {
            plan.observe_cycle(cycle);
            let expect = cycle >= 50 && (cycle - 50) % 4 == 0;
            let out = plan.corrupt_lvq_payload(3, 0);
            assert_eq!(out != 0, expect, "cycle {cycle}");
        }
    }

    #[test]
    fn uncore_sites_route_independently() {
        let mut plan = FaultPlan::new();
        plan.add(HardFault::stuck_bit(FaultSite::CacheData { index: 5 }, 0));
        plan.add(HardFault::stuck_bit(FaultSite::StoreBuffer { entry: 2 }, 1));
        plan.add(HardFault::stuck_bit(FaultSite::DtqPayload { entry: 7 }, 2));
        plan.add(HardFault::stuck_bit(FaultSite::LvqPayload { entry: 9 }, 3));
        assert_eq!(plan.corrupt_cache_data(5, 0), 1);
        assert_eq!(plan.corrupt_cache_data(4, 0), 0);
        assert_eq!(plan.corrupt_store_buffer(2, 0), 2);
        assert_eq!(plan.corrupt_store_buffer(3, 0), 0);
        assert_eq!(plan.corrupt_dtq_payload(7, 0), 4);
        assert_eq!(plan.corrupt_dtq_payload(6, 0), 0);
        assert_eq!(plan.corrupt_lvq_payload(9, 0), 8);
        assert_eq!(plan.corrupt_lvq_payload(8, 0), 0);
        assert!(plan.has_site(FaultSite::CacheData { index: 5 }));
        assert!(!plan.has_site(FaultSite::CacheData { index: 4 }));
    }

    #[test]
    fn cache_tag_predicate_counts_as_activation() {
        let plan = FaultPlan::single(HardFault::stuck_bit(FaultSite::CacheTag { index: 1 }, 0));
        assert!(!plan.cache_tag_miss(0), "other sets healthy");
        assert_eq!((plan.exercised(), plan.activations()), (0, 0));
        assert!(plan.cache_tag_miss(1));
        assert_eq!((plan.exercised(), plan.activations()), (1, 1));
    }

    #[test]
    fn clone_preserves_kind_and_observed_cycle() {
        let plan = FaultPlan::single(HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 0))
            .arm_at(10)
            .with_kind(FaultKind::Transient);
        plan.observe_cycle(10);
        let copy = plan.clone();
        assert_eq!(copy.kind(), FaultKind::Transient);
        assert_eq!(copy.corrupt_backend(0, 0), 1, "copy still sees the arming cycle");
    }
}
