//! # Hard-fault models and coverage accounting
//!
//! This crate defines *where* a permanent (hard) fault can live in the
//! simulated core ([`FaultSite`]), *how* it corrupts values flowing through
//! the faulty structure ([`Corruption`]), and *when* it fires
//! ([`Trigger`] — always, or only under specific operand patterns, modeling
//! the paper's "errors exercised by very specific machine state").
//!
//! It also implements the paper's coverage methodology (§5): hard-error
//! instruction coverage is the fraction of leading/trailing instruction
//! pairs that executed on spatially diverse hardware, weighted by core
//! area — 34% of the (non-issue-queue) core is frontend logic and 66% is
//! backend logic ([`AreaModel`], [`CoverageAccum`]).
//!
//! # Example
//!
//! ```
//! use blackjack_faults::{AreaModel, CoverageAccum};
//!
//! let mut cov = CoverageAccum::default();
//! // A pair diverse in the frontend but sharing a backend way:
//! cov.record_pair(true, false);
//! // A fully diverse pair:
//! cov.record_pair(true, true);
//! let area = AreaModel::default();
//! assert!((cov.total_coverage(&area) - (0.34 + 0.5 * 0.66)).abs() < 1e-12);
//! ```

mod coverage;
mod detection;
mod diagnosis;
pub mod ecc;
mod fault;

pub use coverage::{AreaModel, CoverageAccum};
pub use detection::{DetectionOutcome, DetectionTally, Taxonomy, TaxonomyTally};
pub use diagnosis::DiagnosisTable;
pub use ecc::EccOutcome;
pub use fault::{Corruption, FaultKind, FaultPlan, FaultSite, HardFault, Trigger};
