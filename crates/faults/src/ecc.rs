//! SEC-DED ECC for the LVQ payload RAM: a Hamming(72,64) code.
//!
//! Each 64-bit captured load value is stored alongside 8 check bits —
//! seven extended-Hamming checks plus one overall-parity bit. Syndrome
//! decode at the read port corrects any single-bit upset (CE), detects
//! any double-bit upset (DUE), and by the code's distance can never
//! miscorrect a single-bit error onto the wrong bit. This closes the
//! known LVQ escape: a load value corrupted *before* capture is shared
//! by both threads, but the code word was generated over the clean
//! value, so the trailing read port restores it and the pair checks
//! then catch the corrupt leading copy.
//!
//! Layout: the canonical extended Hamming construction over codeword
//! positions `1..=71`, where power-of-two positions hold the check bits
//! and the remaining 64 positions hold the data bits in order; the
//! 72nd bit is overall parity of everything else.

/// Codeword position (1-based, in `1..=71`) of data bit `i`: the `i`-th
/// non-power-of-two position.
const DATA_POS: [u8; 64] = {
    let mut table = [0u8; 64];
    let mut pos = 1u8;
    let mut i = 0;
    while i < 64 {
        if !pos.is_power_of_two() {
            table[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    table
};

/// Data bit index for codeword position `pos`, or `0xff` for check-bit
/// positions and out-of-range values.
const POS_TO_DATA: [u8; 128] = {
    let mut table = [0xffu8; 128];
    let mut i = 0;
    while i < 64 {
        table[DATA_POS[i] as usize] = i as u8;
        i += 1;
    }
    table
};

/// The result of a syndrome decode at the LVQ read port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// Code word intact: the stored data is returned as-is.
    Clean,
    /// A single-bit upset was corrected.
    Corrected {
        /// The repaired data word.
        data: u64,
        /// Which *data* bit was repaired, or `None` when the upset hit a
        /// check or parity bit (the data was already intact).
        bit: Option<u8>,
    },
    /// A multi-bit upset: detected but uncorrectable (a DUE).
    Uncorrectable,
}

/// Computes the 8 check bits for `data`: bits `0..7` are the Hamming
/// checks, bit 7 is overall parity over the data and Hamming checks.
pub fn encode(data: u64) -> u8 {
    let mut hamming = 0u8;
    let mut rest = data;
    while rest != 0 {
        let i = rest.trailing_zeros() as usize;
        hamming ^= DATA_POS[i];
        rest &= rest - 1;
    }
    debug_assert_eq!(hamming & 0x80, 0, "positions fit in 7 bits");
    let parity = ((data.count_ones() + u32::from(hamming).count_ones()) & 1) as u8;
    hamming | (parity << 7)
}

/// Syndrome-decodes a stored `(data, check)` pair.
pub fn decode(data: u64, check: u8) -> EccOutcome {
    let expected = encode(data);
    let syndrome = (expected ^ check) & 0x7f;
    // Total parity of the received 72-bit code word; even when intact.
    let odd_weight = (data.count_ones() + u32::from(check).count_ones()) & 1 == 1;
    match (syndrome, odd_weight) {
        (0, false) => EccOutcome::Clean,
        // Odd number of flipped bits with a zero syndrome: the overall
        // parity bit itself flipped. Data intact.
        (0, true) => EccOutcome::Corrected { data, bit: None },
        (s, true) => {
            if s.is_power_of_two() {
                // A Hamming check bit flipped; data intact.
                EccOutcome::Corrected { data, bit: None }
            } else {
                match POS_TO_DATA[s as usize] {
                    0xff => EccOutcome::Uncorrectable, // invalid position: ≥3 flips
                    bit => EccOutcome::Corrected { data: data ^ (1u64 << bit), bit: Some(bit) },
                }
            }
        }
        // Non-zero syndrome with even overall weight: double-bit upset.
        (_, false) => EccOutcome::Uncorrectable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 6] = [
        0,
        u64::MAX,
        0xdead_beef_cafe_f00d,
        0x0123_4567_89ab_cdef,
        1,
        0x8000_0000_0000_0000,
    ];

    /// Flips codeword bit `pos` (0..64 = data bits, 64..72 = check bits)
    /// of a stored pair.
    fn flip(data: u64, check: u8, pos: usize) -> (u64, u8) {
        if pos < 64 {
            (data ^ (1u64 << pos), check)
        } else {
            (data, check ^ (1u8 << (pos - 64)))
        }
    }

    #[test]
    fn intact_words_decode_clean() {
        for &d in &SAMPLES {
            assert_eq!(decode(d, encode(d)), EccOutcome::Clean, "data {d:#x}");
        }
    }

    #[test]
    fn every_single_bit_upset_is_corrected_exactly() {
        for &d in &SAMPLES {
            let check = encode(d);
            for pos in 0..72 {
                let (fd, fc) = flip(d, check, pos);
                match decode(fd, fc) {
                    EccOutcome::Corrected { data, bit } => {
                        assert_eq!(data, d, "data {d:#x} flipped bit {pos}: repaired wrong");
                        if pos < 64 {
                            assert_eq!(bit, Some(pos as u8), "repaired the wrong position");
                        } else {
                            assert_eq!(bit, None, "check-bit upset must leave data alone");
                        }
                    }
                    other => panic!("data {d:#x} flipped bit {pos}: got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_bit_upset_is_detected_not_miscorrected() {
        for &d in &SAMPLES[..3] {
            let check = encode(d);
            for a in 0..72 {
                for b in (a + 1)..72 {
                    let (fd, fc) = flip(d, check, a);
                    let (fd, fc) = flip(fd, fc, b);
                    assert_eq!(
                        decode(fd, fc),
                        EccOutcome::Uncorrectable,
                        "data {d:#x} flipped bits {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn parity_matrix_is_miscorrection_free() {
        // Every one of the 72 single-bit error patterns must produce a
        // distinct (syndrome, overall-parity) signature, and none may
        // collide with the clean signature — otherwise the decoder would
        // repair the wrong bit for some upset.
        let d = 0u64;
        let check = encode(d);
        let mut seen = Vec::new();
        for pos in 0..72 {
            let (fd, fc) = flip(d, check, pos);
            let expected = encode(fd);
            let syndrome = (expected ^ fc) & 0x7f;
            let odd = (fd.count_ones() + u32::from(fc).count_ones()) & 1 == 1;
            let sig = (syndrome, odd);
            assert_ne!(sig, (0, false), "single-bit error {pos} looks clean");
            assert!(!seen.contains(&sig), "signature collision at bit {pos}");
            seen.push(sig);
        }
        assert_eq!(seen.len(), 72);
    }

    #[test]
    fn all_data_widths_in_use_round_trip() {
        // Loads narrower than 64 bits still store a full 64-bit LVQ
        // entry (zero- or sign-extended); spot-check the code over the
        // extension patterns those widths produce.
        for width in [8u32, 16, 32, 64] {
            let max = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            for v in [0, 1, max / 2, max] {
                let sext = (v as i64) << (64 - width) >> (64 - width);
                for d in [v, sext as u64] {
                    assert_eq!(decode(d, encode(d)), EccOutcome::Clean);
                    let (fd, fc) = flip(d, encode(d), (width - 1) as usize);
                    assert!(matches!(decode(fd, fc), EccOutcome::Corrected { data, .. } if data == d));
                }
            }
        }
    }
}
