//! Outcome classification for fault-injection campaigns.
//!
//! A single-fault injection run ends one of four ways; [`DetectionTally`]
//! counts them per mode so campaign workers can classify runs
//! independently and merge their tallies deterministically afterwards.

/// How one injected-fault run ended, from the detection experiment's point
/// of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// The redundancy mechanism flagged a mismatch before retirement.
    Detected,
    /// The run completed with architectural state differing from the
    /// golden run: silent data corruption.
    SilentCorruption,
    /// The run completed with state identical to the golden run — the
    /// fault was never exercised, or was logically masked.
    Benign,
    /// The fault wedged a thread and the cycle-limit watchdog fired (in
    /// hardware, a timeout is itself a detection).
    Stuck,
}

/// Counts of [`DetectionOutcome`]s over a set of injection runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionTally {
    /// Mismatch detected before retirement.
    pub detected: u32,
    /// Silent data corruption.
    pub corrupted: u32,
    /// Fault masked or never exercised.
    pub benign: u32,
    /// Watchdog timeout.
    pub stuck: u32,
    /// Of the `benign` runs, how many were *statically proven* benign
    /// (the program's instruction mix can never exercise the faulty
    /// structure) and therefore tallied without simulating. Always
    /// `pruned <= benign`; [`DetectionTally::total`] is unaffected.
    pub pruned: u32,
}

impl DetectionTally {
    /// Records one run's outcome.
    pub fn record(&mut self, outcome: DetectionOutcome) {
        match outcome {
            DetectionOutcome::Detected => self.detected += 1,
            DetectionOutcome::SilentCorruption => self.corrupted += 1,
            DetectionOutcome::Benign => self.benign += 1,
            DetectionOutcome::Stuck => self.stuck += 1,
        }
    }

    /// A tally of a single outcome — the unit campaign workers return.
    pub fn of(outcome: DetectionOutcome) -> DetectionTally {
        let mut t = DetectionTally::default();
        t.record(outcome);
        t
    }

    /// A tally for one fault site statically proven unexercisable: the
    /// run counts as [`DetectionOutcome::Benign`] (its dynamic outcome
    /// is certain) but is also marked pruned, so reports can state how
    /// much simulation the static analysis saved.
    pub fn pruned_site() -> DetectionTally {
        DetectionTally { benign: 1, pruned: 1, ..DetectionTally::default() }
    }

    /// Sums another tally into this one. Merging is commutative and
    /// associative, so any grouping of per-run tallies gives the same
    /// totals.
    pub fn merge(&mut self, other: &DetectionTally) {
        self.detected += other.detected;
        self.corrupted += other.corrupted;
        self.benign += other.benign;
        self.stuck += other.stuck;
        self.pruned += other.pruned;
    }

    /// Total runs recorded.
    pub fn total(&self) -> u32 {
        self.detected + self.corrupted + self.benign + self.stuck
    }

    /// `count` as a share of [`DetectionTally::total`] — `"40 (50.0%)"`.
    /// The one formatting every percentage-bearing report uses, so the
    /// harness table and the experiment narrative cannot drift apart.
    pub fn share(&self, count: u32) -> String {
        match self.total() {
            0 => format!("{count}"),
            total => format!("{count} ({:.1}%)", 100.0 * f64::from(count) / f64::from(total)),
        }
    }

    /// One-line rate summary over all recorded runs.
    pub fn summary(&self) -> String {
        format!(
            "detected {}, silent {}, benign {}, stuck {} of {} injections",
            self.share(self.detected),
            self.share(self.corrupted),
            self.share(self.benign),
            self.share(self.stuck),
            self.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_agree() {
        let outcomes = [
            DetectionOutcome::Detected,
            DetectionOutcome::Detected,
            DetectionOutcome::SilentCorruption,
            DetectionOutcome::Benign,
            DetectionOutcome::Stuck,
            DetectionOutcome::Benign,
        ];
        // One big tally...
        let mut all = DetectionTally::default();
        for &o in &outcomes {
            all.record(o);
        }
        // ...equals merged per-run tallies in any split.
        let mut merged = DetectionTally::default();
        for &o in &outcomes {
            merged.merge(&DetectionTally::of(o));
        }
        assert_eq!(all, merged);
        assert_eq!(all.detected, 2);
        assert_eq!(all.corrupted, 1);
        assert_eq!(all.benign, 2);
        assert_eq!(all.stuck, 1);
        assert_eq!(all.total(), 6);
    }

    #[test]
    fn pruned_sites_count_as_benign() {
        let mut t = DetectionTally::of(DetectionOutcome::Detected);
        t.merge(&DetectionTally::pruned_site());
        t.merge(&DetectionTally::pruned_site());
        assert_eq!(t.benign, 2);
        assert_eq!(t.pruned, 2);
        assert_eq!(t.total(), 3, "pruned is a subset of benign, not a fifth bucket");
        assert!(t.pruned <= t.benign);
    }

    #[test]
    fn shares_and_summary_format_consistently() {
        let t = DetectionTally { detected: 40, corrupted: 1, benign: 39, stuck: 0, pruned: 34 };
        assert_eq!(t.total(), 80);
        assert_eq!(t.share(t.detected), "40 (50.0%)");
        assert_eq!(t.share(t.corrupted), "1 (1.2%)");
        assert_eq!(t.share(t.stuck), "0 (0.0%)");
        assert_eq!(
            t.summary(),
            "detected 40 (50.0%), silent 1 (1.2%), benign 39 (48.8%), stuck 0 (0.0%) \
             of 80 injections"
        );
        // Empty tallies degrade to bare counts, never divide by zero.
        assert_eq!(DetectionTally::default().share(0), "0");
    }
}
