//! Outcome classification for fault-injection campaigns.
//!
//! A single-fault injection run ends one of four ways; [`DetectionTally`]
//! counts them per mode so campaign workers can classify runs
//! independently and merge their tallies deterministically afterwards.

/// How one injected-fault run ended, from the detection experiment's point
/// of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// The redundancy mechanism flagged a mismatch before retirement.
    Detected,
    /// The run completed with architectural state differing from the
    /// golden run: silent data corruption.
    SilentCorruption,
    /// The run completed with state identical to the golden run — the
    /// fault was never exercised, or was logically masked.
    Benign,
    /// The fault wedged a thread and the cycle-limit watchdog fired (in
    /// hardware, a timeout is itself a detection).
    Stuck,
}

/// Counts of [`DetectionOutcome`]s over a set of injection runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionTally {
    /// Mismatch detected before retirement.
    pub detected: u32,
    /// Silent data corruption.
    pub corrupted: u32,
    /// Fault masked or never exercised.
    pub benign: u32,
    /// Watchdog timeout.
    pub stuck: u32,
    /// Of the `benign` runs, how many were *statically proven* benign
    /// (the program's instruction mix can never exercise the faulty
    /// structure) and therefore tallied without simulating. Always
    /// `pruned <= benign`; [`DetectionTally::total`] is unaffected.
    pub pruned: u32,
}

impl DetectionTally {
    /// Records one run's outcome.
    pub fn record(&mut self, outcome: DetectionOutcome) {
        match outcome {
            DetectionOutcome::Detected => self.detected += 1,
            DetectionOutcome::SilentCorruption => self.corrupted += 1,
            DetectionOutcome::Benign => self.benign += 1,
            DetectionOutcome::Stuck => self.stuck += 1,
        }
    }

    /// A tally of a single outcome — the unit campaign workers return.
    pub fn of(outcome: DetectionOutcome) -> DetectionTally {
        let mut t = DetectionTally::default();
        t.record(outcome);
        t
    }

    /// A tally for one fault site statically proven unexercisable: the
    /// run counts as [`DetectionOutcome::Benign`] (its dynamic outcome
    /// is certain) but is also marked pruned, so reports can state how
    /// much simulation the static analysis saved.
    pub fn pruned_site() -> DetectionTally {
        DetectionTally { benign: 1, pruned: 1, ..DetectionTally::default() }
    }

    /// Sums another tally into this one. Merging is commutative and
    /// associative, so any grouping of per-run tallies gives the same
    /// totals.
    pub fn merge(&mut self, other: &DetectionTally) {
        self.detected += other.detected;
        self.corrupted += other.corrupted;
        self.benign += other.benign;
        self.stuck += other.stuck;
        self.pruned += other.pruned;
    }

    /// Total runs recorded.
    pub fn total(&self) -> u32 {
        self.detected + self.corrupted + self.benign + self.stuck
    }

    /// `count` as a share of [`DetectionTally::total`] — `"40 (50.0%)"`.
    /// The one formatting every percentage-bearing report uses, so the
    /// harness table and the experiment narrative cannot drift apart.
    pub fn share(&self, count: u32) -> String {
        match self.total() {
            0 => format!("{count}"),
            total => format!("{count} ({:.1}%)", 100.0 * f64::from(count) / f64::from(total)),
        }
    }

    /// One-line rate summary over all recorded runs.
    pub fn summary(&self) -> String {
        format!(
            "detected {}, silent {}, benign {}, stuck {} of {} injections",
            self.share(self.detected),
            self.share(self.corrupted),
            self.share(self.benign),
            self.share(self.stuck),
            self.total(),
        )
    }
}

/// The standard reliability taxonomy for one injection run's outcome.
///
/// Every run lands in exactly one bucket: **CE** (corrected error — the
/// ECC layer repaired the upset and the run finished architecturally
/// clean), **DUE** (detected uncorrectable error — any detection, be it
/// a pair-check mismatch, an ECC double-bit flag, or a watchdog
/// timeout), **SDC** (silent data corruption — the run finished with
/// wrong architectural state), or **Benign** (the fault was never
/// exercised or was logically masked, and nothing corrected anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taxonomy {
    /// Corrected error: repaired in flight, clean completion.
    Ce,
    /// Detected uncorrectable error.
    Due,
    /// Silent data corruption.
    Sdc,
    /// Masked or never exercised.
    Benign,
}

impl Taxonomy {
    /// Maps a detection-experiment outcome into the taxonomy.
    /// `corrected` reports whether an ECC correction fired during the
    /// run; it only matters for clean completions (a corrected upset
    /// that still ends in a detection is a DUE — the correction did not
    /// save the run).
    pub fn of(outcome: DetectionOutcome, corrected: bool) -> Taxonomy {
        match outcome {
            DetectionOutcome::Detected | DetectionOutcome::Stuck => Taxonomy::Due,
            DetectionOutcome::SilentCorruption => Taxonomy::Sdc,
            DetectionOutcome::Benign if corrected => Taxonomy::Ce,
            DetectionOutcome::Benign => Taxonomy::Benign,
        }
    }

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            Taxonomy::Ce => "CE",
            Taxonomy::Due => "DUE",
            Taxonomy::Sdc => "SDC",
            Taxonomy::Benign => "benign",
        }
    }
}

/// Counts of [`Taxonomy`] outcomes over a set of injection runs.
/// Merging is commutative and associative, like [`DetectionTally`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaxonomyTally {
    /// Corrected errors.
    pub ce: u32,
    /// Detected uncorrectable errors.
    pub due: u32,
    /// Silent data corruptions.
    pub sdc: u32,
    /// Masked or unexercised faults.
    pub benign: u32,
}

impl TaxonomyTally {
    /// Records one run.
    pub fn record(&mut self, t: Taxonomy) {
        match t {
            Taxonomy::Ce => self.ce += 1,
            Taxonomy::Due => self.due += 1,
            Taxonomy::Sdc => self.sdc += 1,
            Taxonomy::Benign => self.benign += 1,
        }
    }

    /// A tally of a single run — the unit campaign workers return.
    pub fn of(t: Taxonomy) -> TaxonomyTally {
        let mut tally = TaxonomyTally::default();
        tally.record(t);
        tally
    }

    /// Sums another tally into this one.
    pub fn merge(&mut self, other: &TaxonomyTally) {
        self.ce += other.ce;
        self.due += other.due;
        self.sdc += other.sdc;
        self.benign += other.benign;
    }

    /// Total runs recorded.
    pub fn total(&self) -> u32 {
        self.ce + self.due + self.sdc + self.benign
    }

    /// `count` as a share of the total — same formatting as
    /// [`DetectionTally::share`].
    pub fn share(&self, count: u32) -> String {
        match self.total() {
            0 => format!("{count}"),
            total => format!("{count} ({:.1}%)", 100.0 * f64::from(count) / f64::from(total)),
        }
    }

    /// One-line CE/DUE/SDC/benign summary.
    pub fn summary(&self) -> String {
        format!(
            "CE {}, DUE {}, SDC {}, benign {} of {} injections",
            self.share(self.ce),
            self.share(self.due),
            self.share(self.sdc),
            self.share(self.benign),
            self.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_agree() {
        let outcomes = [
            DetectionOutcome::Detected,
            DetectionOutcome::Detected,
            DetectionOutcome::SilentCorruption,
            DetectionOutcome::Benign,
            DetectionOutcome::Stuck,
            DetectionOutcome::Benign,
        ];
        // One big tally...
        let mut all = DetectionTally::default();
        for &o in &outcomes {
            all.record(o);
        }
        // ...equals merged per-run tallies in any split.
        let mut merged = DetectionTally::default();
        for &o in &outcomes {
            merged.merge(&DetectionTally::of(o));
        }
        assert_eq!(all, merged);
        assert_eq!(all.detected, 2);
        assert_eq!(all.corrupted, 1);
        assert_eq!(all.benign, 2);
        assert_eq!(all.stuck, 1);
        assert_eq!(all.total(), 6);
    }

    #[test]
    fn pruned_sites_count_as_benign() {
        let mut t = DetectionTally::of(DetectionOutcome::Detected);
        t.merge(&DetectionTally::pruned_site());
        t.merge(&DetectionTally::pruned_site());
        assert_eq!(t.benign, 2);
        assert_eq!(t.pruned, 2);
        assert_eq!(t.total(), 3, "pruned is a subset of benign, not a fifth bucket");
        assert!(t.pruned <= t.benign);
    }

    #[test]
    fn shares_and_summary_format_consistently() {
        let t = DetectionTally { detected: 40, corrupted: 1, benign: 39, stuck: 0, pruned: 34 };
        assert_eq!(t.total(), 80);
        assert_eq!(t.share(t.detected), "40 (50.0%)");
        assert_eq!(t.share(t.corrupted), "1 (1.2%)");
        assert_eq!(t.share(t.stuck), "0 (0.0%)");
        assert_eq!(
            t.summary(),
            "detected 40 (50.0%), silent 1 (1.2%), benign 39 (48.8%), stuck 0 (0.0%) \
             of 80 injections"
        );
        // Empty tallies degrade to bare counts, never divide by zero.
        assert_eq!(DetectionTally::default().share(0), "0");
    }

    #[test]
    fn taxonomy_mapping_is_total() {
        use DetectionOutcome as O;
        assert_eq!(Taxonomy::of(O::Detected, false), Taxonomy::Due);
        assert_eq!(Taxonomy::of(O::Detected, true), Taxonomy::Due, "correction can't save a detected run");
        assert_eq!(Taxonomy::of(O::Stuck, false), Taxonomy::Due, "a timeout is a detection");
        assert_eq!(Taxonomy::of(O::SilentCorruption, false), Taxonomy::Sdc);
        assert_eq!(Taxonomy::of(O::SilentCorruption, true), Taxonomy::Sdc, "a correction elsewhere doesn't excuse SDC");
        assert_eq!(Taxonomy::of(O::Benign, true), Taxonomy::Ce);
        assert_eq!(Taxonomy::of(O::Benign, false), Taxonomy::Benign);
    }

    #[test]
    fn taxonomy_tally_merges_like_detection_tally() {
        let runs = [Taxonomy::Ce, Taxonomy::Due, Taxonomy::Due, Taxonomy::Sdc, Taxonomy::Benign];
        let mut all = TaxonomyTally::default();
        for &t in &runs {
            all.record(t);
        }
        let mut merged = TaxonomyTally::default();
        for &t in &runs {
            merged.merge(&TaxonomyTally::of(t));
        }
        assert_eq!(all, merged);
        assert_eq!((all.ce, all.due, all.sdc, all.benign), (1, 2, 1, 1));
        assert_eq!(all.total(), 5);
        assert_eq!(
            all.summary(),
            "CE 1 (20.0%), DUE 2 (40.0%), SDC 1 (20.0%), benign 1 (20.0%) of 5 injections"
        );
    }
}
