//! Online hard-fault diagnosis by detection-pattern accumulation.
//!
//! BlackJack *detects* a hard error but does not say which unit is broken.
//! The paper discusses online diagnosis (Bower et al., MICRO'05) as
//! related work; this module implements the natural diagnosis layer on top
//! of BlackJack's detections: every detection implicates the hardware both
//! copies of the failing instruction used, and across repeated detections
//! the defective unit accumulates suspicion fastest — the fault-free
//! diverse copy changes from run to run while the faulty unit keeps
//! reappearing.

/// Accumulates suspicion per backend way (FU instance) and per frontend
/// way across detections.
///
/// # Example
///
/// ```
/// use blackjack_faults::DiagnosisTable;
///
/// let mut d = DiagnosisTable::new(16, 4);
/// // Three detections, all involving backend way 4 (plus varying ways).
/// d.record_backend(4); d.record_backend(5);
/// d.record_backend(4); d.record_backend(6);
/// d.record_backend(4); d.record_backend(7);
/// assert_eq!(d.suspect_backend(), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct DiagnosisTable {
    backend: Vec<u64>,
    frontend: Vec<u64>,
    detections: u64,
}

impl DiagnosisTable {
    /// Creates a table for `backend_ways` FU instances and
    /// `frontend_ways` fetch slots.
    pub fn new(backend_ways: usize, frontend_ways: usize) -> DiagnosisTable {
        DiagnosisTable {
            backend: vec![0; backend_ways],
            frontend: vec![0; frontend_ways],
            detections: 0,
        }
    }

    /// Number of detections folded in (count once per detection via
    /// [`DiagnosisTable::close_detection`], or track externally).
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Implicates a backend way in the current detection.
    pub fn record_backend(&mut self, way: usize) {
        if let Some(c) = self.backend.get_mut(way) {
            *c += 1;
        }
    }

    /// Implicates a frontend way in the current detection.
    pub fn record_frontend(&mut self, way: usize) {
        if let Some(c) = self.frontend.get_mut(way) {
            *c += 1;
        }
    }

    /// Marks the end of one detection's evidence.
    pub fn close_detection(&mut self) {
        self.detections += 1;
    }

    /// The most-implicated backend way, if it stands out (strictly more
    /// counts than any other way).
    pub fn suspect_backend(&self) -> Option<usize> {
        unique_max(&self.backend)
    }

    /// The most-implicated frontend way, if it stands out.
    pub fn suspect_frontend(&self) -> Option<usize> {
        unique_max(&self.frontend)
    }

    /// Suspicion counts per backend way.
    pub fn backend_counts(&self) -> &[u64] {
        &self.backend
    }

    /// Suspicion counts per frontend way.
    pub fn frontend_counts(&self) -> &[u64] {
        &self.frontend
    }
}

fn unique_max(counts: &[u64]) -> Option<usize> {
    let (mut best, mut best_count, mut tied) = (0usize, 0u64, true);
    for (i, &c) in counts.iter().enumerate() {
        if c > best_count {
            best = i;
            best_count = c;
            tied = false;
        } else if c == best_count {
            tied = true;
        }
    }
    (!tied && best_count > 0).then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_evidence_no_suspect() {
        let d = DiagnosisTable::new(16, 4);
        assert_eq!(d.suspect_backend(), None);
        assert_eq!(d.suspect_frontend(), None);
    }

    #[test]
    fn single_detection_is_ambiguous() {
        // One detection implicates both copies' ways equally.
        let mut d = DiagnosisTable::new(16, 4);
        d.record_backend(4);
        d.record_backend(5);
        d.close_detection();
        assert_eq!(d.suspect_backend(), None, "tie: cannot tell which copy was wrong");
    }

    #[test]
    fn repeated_detections_converge() {
        let mut d = DiagnosisTable::new(16, 4);
        for other in [5, 6, 7] {
            d.record_backend(4);
            d.record_backend(other);
            d.close_detection();
        }
        assert_eq!(d.suspect_backend(), Some(4));
        assert_eq!(d.detections(), 3);
        assert_eq!(d.backend_counts()[4], 3);
    }

    #[test]
    fn frontend_diagnosis() {
        let mut d = DiagnosisTable::new(16, 4);
        d.record_frontend(1);
        d.record_frontend(2);
        d.close_detection();
        d.record_frontend(1);
        d.record_frontend(3);
        d.close_detection();
        assert_eq!(d.suspect_frontend(), Some(1));
    }

    #[test]
    fn out_of_range_ways_ignored() {
        let mut d = DiagnosisTable::new(4, 2);
        d.record_backend(99);
        d.record_frontend(99);
        assert_eq!(d.suspect_backend(), None);
    }
}
