//! The paper's area-weighted hard-error instruction-coverage model (§5).

/// Core-area split used to weight coverage.
///
/// Following the paper's HotSpot-derived numbers: the issue queue is
/// excluded (both SRT and BlackJack are credited with covering it — SRT by
/// assumption, BlackJack via the dependence check of §4.4); of the
/// remaining core area, 34% is touched by an instruction in the frontend
/// pipe stages and 66% in the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Fraction of (non-issue-queue) core area in the frontend.
    pub frontend_frac: f64,
    /// Fraction of (non-issue-queue) core area in the backend.
    pub backend_frac: f64,
}

impl Default for AreaModel {
    fn default() -> AreaModel {
        AreaModel { frontend_frac: 0.34, backend_frac: 0.66 }
    }
}

impl AreaModel {
    /// Creates a model from a frontend fraction; backend gets the rest.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= frontend_frac <= 1.0`.
    pub fn with_frontend_frac(frontend_frac: f64) -> AreaModel {
        assert!(
            (0.0..=1.0).contains(&frontend_frac),
            "frontend fraction {frontend_frac} out of [0,1]"
        );
        AreaModel { frontend_frac, backend_frac: 1.0 - frontend_frac }
    }

    /// Area-weighted coverage of one instruction pair.
    pub fn pair_coverage(&self, front_diverse: bool, back_diverse: bool) -> f64 {
        let mut c = 0.0;
        if front_diverse {
            c += self.frontend_frac;
        }
        if back_diverse {
            c += self.backend_frac;
        }
        c
    }
}

/// Accumulates spatial-diversity observations over all committed
/// leading/trailing instruction pairs of a run.
///
/// An instruction pair may be *partially* covered — diverse in the frontend
/// but not the backend, or vice versa — which the area weighting turns into
/// fractional coverage, exactly as in the paper ("we allow for partial
/// coverage of single instructions").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageAccum {
    /// Total instruction pairs observed.
    pub pairs: u64,
    /// Pairs whose copies used different frontend ways.
    pub front_diverse: u64,
    /// Pairs whose copies used different backend ways.
    pub back_diverse: u64,
}

impl CoverageAccum {
    /// Creates an empty accumulator.
    pub fn new() -> CoverageAccum {
        CoverageAccum::default()
    }

    /// Records one committed pair's diversity outcome.
    pub fn record_pair(&mut self, front_diverse: bool, back_diverse: bool) {
        self.pairs += 1;
        self.front_diverse += front_diverse as u64;
        self.back_diverse += back_diverse as u64;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CoverageAccum) {
        self.pairs += other.pairs;
        self.front_diverse += other.front_diverse;
        self.back_diverse += other.back_diverse;
    }

    /// Fraction of pairs with frontend diversity, `[0, 1]`.
    pub fn frontend_coverage(&self) -> f64 {
        self.frac(self.front_diverse)
    }

    /// Fraction of pairs with backend diversity, `[0, 1]` (Figure 4b).
    pub fn backend_coverage(&self) -> f64 {
        self.frac(self.back_diverse)
    }

    /// Area-weighted whole-pipeline coverage, `[0, 1]` (Figure 4a).
    pub fn total_coverage(&self, area: &AreaModel) -> f64 {
        area.frontend_frac * self.frontend_coverage()
            + area.backend_frac * self.backend_coverage()
    }

    fn frac(&self, n: u64) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            n as f64 / self.pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_split() {
        let a = AreaModel::default();
        assert_eq!(a.frontend_frac, 0.34);
        assert_eq!(a.backend_frac, 0.66);
    }

    #[test]
    fn pair_coverage_weights() {
        let a = AreaModel::default();
        assert_eq!(a.pair_coverage(false, false), 0.0);
        assert_eq!(a.pair_coverage(true, false), 0.34);
        assert_eq!(a.pair_coverage(false, true), 0.66);
        assert_eq!(a.pair_coverage(true, true), 1.0);
    }

    #[test]
    fn empty_accumulator_reports_zero() {
        let c = CoverageAccum::new();
        assert_eq!(c.frontend_coverage(), 0.0);
        assert_eq!(c.backend_coverage(), 0.0);
        assert_eq!(c.total_coverage(&AreaModel::default()), 0.0);
    }

    #[test]
    fn fractions_accumulate() {
        let mut c = CoverageAccum::new();
        c.record_pair(true, true);
        c.record_pair(true, false);
        c.record_pair(false, false);
        c.record_pair(false, true);
        assert_eq!(c.pairs, 4);
        assert_eq!(c.frontend_coverage(), 0.5);
        assert_eq!(c.backend_coverage(), 0.5);
        let total = c.total_coverage(&AreaModel::default());
        assert!((total - 0.5).abs() < 1e-12);
    }

    #[test]
    fn srt_like_profile() {
        // SRT: zero frontend diversity, ~52% accidental backend diversity
        // should land near the paper's 34% average.
        let mut c = CoverageAccum::new();
        for i in 0..100 {
            c.record_pair(false, i < 52);
        }
        let total = c.total_coverage(&AreaModel::default());
        assert!((total - 0.3432).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = CoverageAccum::new();
        a.record_pair(true, true);
        let mut b = CoverageAccum::new();
        b.record_pair(false, false);
        a.merge(&b);
        assert_eq!(a.pairs, 2);
        assert_eq!(a.frontend_coverage(), 0.5);
    }

    #[test]
    fn custom_split() {
        let a = AreaModel::with_frontend_frac(0.5);
        assert_eq!(a.backend_frac, 0.5);
    }

    #[test]
    #[should_panic]
    fn bad_split_panics() {
        let _ = AreaModel::with_frontend_frac(1.5);
    }
}
