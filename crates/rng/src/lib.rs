//! # A small deterministic PRNG
//!
//! The build environment has no network access to crates.io, so the
//! workspace carries its own generator instead of depending on `rand`.
//! [`Rng`] is a SplitMix64-seeded xoshiro256** generator: fast, tiny
//! state, and excellent statistical quality for the two things the
//! workspace needs randomness for — the random terminating-program
//! generator (`blackjack-workloads`) and the randomized property tests.
//!
//! The same seed always yields the same stream on every platform; the
//! differential tests depend on that.
//!
//! ```
//! use blackjack_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.random_range(0..10u32);
//! assert!(a < 10);
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(a, again.random_range(0..10u32));
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator, seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`, exactly unbiased via modulo
    /// rejection (the rejection zone is vanishingly small for the bounds
    /// used here, so the loop essentially never retries).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Accept v only below the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniform sample from a (half-open or inclusive) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoEndpoints<T>,
    {
        let (lo, hi_inclusive) = range.into_endpoints();
        T::sample(self, lo, hi_inclusive)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

/// Integer types [`Rng::random_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi]` (both inclusive).
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

/// Range forms accepted by [`Rng::random_range`].
pub trait IntoEndpoints<T> {
    /// `(low, high)` with both ends inclusive.
    fn into_endpoints(self) -> (T, T);
}

impl<T: SampleUniform + HasPredecessor> IntoEndpoints<T> for Range<T> {
    fn into_endpoints(self) -> (T, T) {
        (self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> IntoEndpoints<T> for RangeInclusive<T> {
    fn into_endpoints(self) -> (T, T) {
        self.into_inner()
    }
}

/// `x - 1` for turning an exclusive upper bound inclusive.
pub trait HasPredecessor {
    /// The previous representable value.
    fn predecessor(self) -> Self;
}

macro_rules! impl_pred {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            #[inline]
            fn predecessor(self) -> Self {
                self.checked_sub(1).expect("empty range")
            }
        }
    )*};
}

impl_pred!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let s = rng.random_range(-2048..2048i32);
            assert!((-2048..2048).contains(&s));
            let u = rng.random_range(0..=3usize);
            assert!(u <= 3);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 seen: {seen:?}");
    }

    #[test]
    fn bool_probability_roughly_honored() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn signed_full_span() {
        let mut rng = Rng::seed_from_u64(4);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..1000 {
            let v = rng.random_range(-10..=10i64);
            assert!((-10..=10).contains(&v));
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }
}
