//! Fault-soundness oracles: injected hard faults must be detected,
//! provably masked, or sit on a site the static analysis already
//! excludes from the guarantee.
//!
//! Site classification comes from `blackjack-analysis`:
//!
//! * [`SiteClass::Pruned`] — the fault can never fire
//!   ([`SiteAnalysis::prunable`]); the run must be indistinguishable
//!   from fault-free (completed, zero detections, golden memory).
//! * [`SiteClass::Guaranteed`] — BlackJack's checks guarantee
//!   detection-or-masking ([`SiteAnalysis::detection_guaranteed`]); a
//!   completed run with memory differing from golden is silent data
//!   corruption and fails the fuzzer. A frontend guarantee additionally
//!   requires that safe-shuffle never *forced* a same-way placement,
//!   which the oracle checks on the observed run.
//! * [`SiteClass::BestEffort`] — known escape paths (`MemPort` backend
//!   ways and payload RAM corrupt leading load values before LVQ
//!   capture, so both threads can agree on a wrong value). Escapes are
//!   tallied, not failed — but the run must still terminate cleanly.
//!
//! A watchdog-triggered cycle-limit on a faulty run counts as detection:
//! the fault wedged the pipeline and the deadlock detector flagged it,
//! which is containment, not silence.

use blackjack_analysis::SiteAnalysis;
use blackjack_faults::{FaultKind, FaultPlan, FaultSite, HardFault, Taxonomy};
use blackjack_isa::{Interp, PagedMem, Program};
use blackjack_sim::{Core, CoreConfig, Mode, RunOutcome};

use crate::diff::{MAX_CYCLES, MAX_STEPS};

/// What the static analysis promises for a fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Statically dead: the fault can never corrupt an executing uop.
    Pruned,
    /// Detection (or architectural masking) is guaranteed.
    Guaranteed,
    /// Known escape path; detection is best-effort.
    BestEffort,
}

/// How one faulty run ended, relative to the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// A redundancy check fired.
    Detected,
    /// The pipeline wedged and the deadlock watchdog contained it.
    Watchdog,
    /// The run completed with memory identical to golden: the fault was
    /// architecturally masked (or never fired).
    Masked,
    /// The run completed with memory differing from golden — silent
    /// data corruption. Only tolerable on [`SiteClass::BestEffort`]
    /// sites.
    Escaped,
}

/// A soundness violation: the verdict contradicts the site's class.
#[derive(Debug, Clone)]
pub struct Soundness {
    /// The injected fault.
    pub fault: HardFault,
    /// The site's static classification.
    pub class: SiteClass,
    /// The observed verdict.
    pub verdict: FaultVerdict,
    /// Explanation of the violation.
    pub detail: String,
}

impl std::fmt::Display for Soundness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({:?} site, {:?}): {}", self.fault, self.class, self.verdict, self.detail)
    }
}

/// Classifies `site` for `prog` under the default backend (ECC off).
pub fn classify_sites(analysis: &SiteAnalysis, site: FaultSite) -> SiteClass {
    classify_sites_ecc(analysis, site, false)
}

/// [`classify_sites`] with the LVQ SEC-DED layer's state threaded in:
/// with `ecc` on, the load-value escape paths (`MemPort` backend ways,
/// payload RAM, cache data arrays) are corrected or flagged at the
/// trailing LVQ read, promoting those sites to [`SiteClass::Guaranteed`].
pub fn classify_sites_ecc(analysis: &SiteAnalysis, site: FaultSite, ecc: bool) -> SiteClass {
    if analysis.prunable(site) {
        SiteClass::Pruned
    } else if analysis.detection_guaranteed_with(site, ecc) {
        SiteClass::Guaranteed
    } else {
        SiteClass::BestEffort
    }
}

/// Runs `prog` in BlackJack mode with `fault` injected and judges the
/// outcome against `golden_mem` (the fault-free interpreter's final
/// memory) and the site's static class.
///
/// # Errors
///
/// Returns [`Soundness`] when the verdict violates the class contract:
/// an SDC on a guaranteed site, any deviation at all on a pruned site,
/// or a wedge the watchdog failed to contain.
pub fn check_fault(
    prog: &Program,
    analysis: &SiteAnalysis,
    fault: HardFault,
    golden_mem: &PagedMem,
) -> Result<FaultVerdict, Soundness> {
    check_fault_universe(prog, analysis, fault, FaultKind::Hard, 0, false, golden_mem)
}

/// [`check_fault`] over the full fault universe: `kind` and `arm` pick
/// the temporal model (permanent from `arm`, single-cycle at `arm`, or
/// duty-cycled burst), `ecc` turns the LVQ SEC-DED layer on. The site
/// contract is judged against the ECC-aware classification
/// ([`classify_sites_ecc`]) — with ECC on, an escape on a promoted site
/// (payload RAM, `MemPort` way, cache data) is a soundness failure.
///
/// # Errors
///
/// Returns [`Soundness`] exactly as [`check_fault`] does.
pub fn check_fault_universe(
    prog: &Program,
    analysis: &SiteAnalysis,
    fault: HardFault,
    kind: FaultKind,
    arm: u64,
    ecc: bool,
    golden_mem: &PagedMem,
) -> Result<FaultVerdict, Soundness> {
    let class = classify_sites_ecc(analysis, fault.site, ecc);
    let mut cfg = CoreConfig::with_mode(Mode::BlackJack);
    cfg.lvq_ecc = ecc;
    let mut core = Core::new(cfg, prog, FaultPlan::single(fault).arm_at(arm).with_kind(kind));
    let outcome = core.run(MAX_CYCLES);
    let stats = core.stats();
    let verdict = match outcome {
        RunOutcome::Detected(_) => FaultVerdict::Detected,
        RunOutcome::CycleLimit => {
            if stats.deadlocked {
                FaultVerdict::Watchdog
            } else {
                // The fault made the program run longer than the budget
                // without a detected deadlock — treat as a wedge.
                return Err(Soundness {
                    fault,
                    class,
                    verdict: FaultVerdict::Watchdog,
                    detail: format!("cycle budget exhausted at {} without deadlock", stats.cycles),
                });
            }
        }
        RunOutcome::Completed => {
            if core.mem().first_difference(golden_mem).is_none() {
                FaultVerdict::Masked
            } else {
                FaultVerdict::Escaped
            }
        }
        // The oracle never arms the early-exit checks (no quiesce cycle
        // or stall window is configured above).
        RunOutcome::EarlyExit(r) => unreachable!("early exit ({r}) without early-exit config"),
    };

    // Forced same-way shuffle placements void the frontend guarantee for
    // this particular run (the paper's Section on safe-shuffle forced
    // placements); downgrade to best-effort.
    let effective_class = if class == SiteClass::Guaranteed
        && matches!(fault.site, FaultSite::Frontend { .. })
        && stats.shuffle_forced > 0
    {
        SiteClass::BestEffort
    } else {
        class
    };

    match (effective_class, verdict) {
        (SiteClass::Pruned, FaultVerdict::Masked) => Ok(verdict),
        (SiteClass::Pruned, v) => Err(Soundness {
            fault,
            class,
            verdict: v,
            detail: "statically-benign site deviated from the fault-free run".into(),
        }),
        (SiteClass::Guaranteed, FaultVerdict::Escaped) => Err(Soundness {
            fault,
            class,
            verdict,
            detail: "silent data corruption on a detection-guaranteed site".into(),
        }),
        (_, v) => Ok(v),
    }
}

/// Convenience: the golden memory for `prog` (interpreter, fault-free).
///
/// # Panics
///
/// Panics if the program does not halt within [`MAX_STEPS`]; callers
/// run [`crate::diff::check_fault_free`] first, which screens that out.
pub fn golden_memory(prog: &Program) -> PagedMem {
    let mut it = Interp::new(prog);
    let _ = it.run(MAX_STEPS);
    assert!(it.halted(), "golden run must halt before fault injection");
    it.mem().clone()
}

/// Replays `prog` in BlackJack mode with `plan` injected and maps the
/// run into the CE/DUE/SDC/benign taxonomy against `golden_mem` — the
/// verdict the corpus taxonomy goldens pin down. Any detection
/// (pair-check, ECC double-bit flag, watchdog) is a DUE; a clean
/// completion is a CE exactly when an ECC correction fired.
pub fn run_taxonomy(
    prog: &Program,
    plan: FaultPlan,
    ecc: bool,
    golden_mem: &PagedMem,
) -> Taxonomy {
    let mut cfg = CoreConfig::with_mode(Mode::BlackJack);
    cfg.lvq_ecc = ecc;
    let mut core = Core::new(cfg, prog, plan);
    match core.run(MAX_CYCLES) {
        RunOutcome::Detected(_) | RunOutcome::CycleLimit => Taxonomy::Due,
        RunOutcome::Completed => {
            if core.mem().first_difference(golden_mem).is_some() {
                Taxonomy::Sdc
            } else if core.stats().ecc_corrected > 0 {
                Taxonomy::Ce
            } else {
                Taxonomy::Benign
            }
        }
        RunOutcome::EarlyExit(r) => unreachable!("early exit ({r}) without early-exit config"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use blackjack_sim::FuCounts;

    #[test]
    fn frontend_faults_on_generated_programs_are_sound() {
        let prog = generate(7, GenConfig { segments: 6, ..GenConfig::default() });
        let analysis = SiteAnalysis::analyze(&prog, &FuCounts::default()).unwrap();
        let golden = golden_memory(&prog);
        for way in 0..2 {
            for bit in [0u8, 3, 17] {
                let fault = HardFault::stuck_bit(FaultSite::Frontend { way }, bit);
                let v = check_fault(&prog, &analysis, fault, &golden)
                    .unwrap_or_else(|s| panic!("unsound: {s}"));
                assert_ne!(v, FaultVerdict::Escaped, "frontend fault escaped");
            }
        }
    }

    #[test]
    fn pruned_sites_are_invisible() {
        // An integer-only program: all FP/mul/div backend ways are dead.
        let prog = blackjack_isa::asm::assemble(
            ".text\n li x1, 3\n sd x1, 0(x2)\n halt\n",
        )
        .unwrap();
        let analysis = SiteAnalysis::analyze(&prog, &FuCounts::default()).unwrap();
        let golden = golden_memory(&prog);
        for way in analysis.prunable_backend_ways() {
            let fault = HardFault::stuck_bit(FaultSite::Backend { way }, 5);
            let v = check_fault(&prog, &analysis, fault, &golden).expect("sound");
            assert_eq!(v, FaultVerdict::Masked);
        }
    }
}
