//! Replayable corpus cases: a tiny text format (`.bjcase`) holding one
//! program image, an optional fault, and the reason the case was kept.
//!
//! The format is line-oriented and diff-friendly so cases live well in
//! git:
//!
//! ```text
//! # optional comments
//! name frontend-stuck-17
//! kind interesting
//! seed 0xb1ac
//! text_base 0x10000
//! data_base 0x100000
//! fault frontend:2:17
//! text
//! 0001a0b7
//! ...
//! data
//! 00ff3a...        (hex, up to 32 bytes per line)
//! end
//! ```
//!
//! `entry` is implied (`text_base`); `fault` is `SITE:WAY[:BIT]` in the
//! same spelling `bjsim --fault` accepts (`frontend`, `backend`,
//! `payload`, `cachedata`, `cachetag`, `sbuf`, `dtq`, `lvq`). Three
//! optional headers extend a fault across the temporal and ECC
//! dimensions, each omitted when at its default so pre-existing cases
//! stay byte-identical:
//!
//! * `temporal hard:ARM` / `transient:ARM` / `intermittent:ARM:PERIOD:ON`
//!   — the fault's [`FaultKind`] and arming cycle (default `hard:0`).
//! * `ecc 1` — replay with the LVQ SEC-DED layer on (default off).
//! * `expect CE|DUE|SDC|benign` — the [`Taxonomy`] verdict the replay
//!   test asserts (default: no assertion).
//!
//! Loading rebuilds the exact program via
//! [`ProgramBuilder::push_raw`], so a case replays bit-for-bit with no
//! assembler in the loop.

use std::fmt::Write as _;
use std::path::Path;

use blackjack_faults::{FaultKind, FaultPlan, FaultSite, HardFault, Taxonomy};
use blackjack_isa::{Program, ProgramBuilder};

/// Why a case is in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// A (minimized) differential or soundness failure.
    Failure,
    /// A generator find with unusual microarchitectural behavior
    /// (deep queue occupancy, extreme slack excursion).
    Interesting,
}

impl CaseKind {
    fn as_str(self) -> &'static str {
        match self {
            CaseKind::Failure => "failure",
            CaseKind::Interesting => "interesting",
        }
    }

    fn parse(s: &str) -> Option<CaseKind> {
        match s {
            "failure" => Some(CaseKind::Failure),
            "interesting" => Some(CaseKind::Interesting),
            _ => None,
        }
    }
}

/// One corpus case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Case name (also the suggested file stem).
    pub name: String,
    /// Why it was kept.
    pub kind: CaseKind,
    /// The generator seed it came from, if any.
    pub seed: Option<u64>,
    /// The program image.
    pub program: Program,
    /// A fault to inject on replay, if the case is about injection.
    pub fault: Option<HardFault>,
    /// The fault's temporal model (plan-level).
    pub temporal: FaultKind,
    /// The fault's arming cycle.
    pub arm: u64,
    /// Replay with the LVQ SEC-DED layer on.
    pub ecc: bool,
    /// Taxonomy verdict the replay must reproduce, if pinned.
    pub expect: Option<Taxonomy>,
}

impl Case {
    /// A case with the default fault dimensions: hard fault armed at
    /// cycle 0, ECC off, no pinned verdict.
    pub fn new(
        name: String,
        kind: CaseKind,
        seed: Option<u64>,
        program: Program,
        fault: Option<HardFault>,
    ) -> Case {
        Case {
            name,
            kind,
            seed,
            program,
            fault,
            temporal: FaultKind::Hard,
            arm: 0,
            ecc: false,
            expect: None,
        }
    }

    /// The injection plan the case describes, if it carries a fault.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.fault
            .map(|f| FaultPlan::single(f).arm_at(self.arm).with_kind(self.temporal))
    }
    /// Serializes the case to `.bjcase` text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# bj-fuzz corpus case (replay: cargo test -p blackjack-fuzz)");
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(out, "kind {}", self.kind.as_str());
        if let Some(seed) = self.seed {
            let _ = writeln!(out, "seed {seed:#x}");
        }
        let _ = writeln!(out, "text_base {:#x}", self.program.text_base());
        let _ = writeln!(out, "data_base {:#x}", self.program.data_base());
        if let Some(f) = self.fault {
            let (site, way) = match f.site {
                FaultSite::Frontend { way } => ("frontend", way),
                FaultSite::Backend { way } => ("backend", way),
                FaultSite::PayloadRam { entry } => ("payload", entry),
                FaultSite::CacheData { index } => ("cachedata", index),
                FaultSite::CacheTag { index } => ("cachetag", index),
                FaultSite::StoreBuffer { entry } => ("sbuf", entry),
                FaultSite::DtqPayload { entry } => ("dtq", entry),
                FaultSite::LvqPayload { entry } => ("lvq", entry),
            };
            let bit = match f.corruption {
                blackjack_faults::Corruption::StuckAt { bit, .. } => bit,
                blackjack_faults::Corruption::FlipBit { bit } => bit,
                blackjack_faults::Corruption::XorMask { .. } => 0,
            };
            let _ = writeln!(out, "fault {site}:{way}:{bit}");
        }
        // The fault-dimension headers are omitted at their defaults so
        // cases minted before these dimensions existed re-serialize
        // byte-identically.
        match self.temporal {
            FaultKind::Hard if self.arm == 0 => {}
            FaultKind::Hard => {
                let _ = writeln!(out, "temporal hard:{}", self.arm);
            }
            FaultKind::Transient => {
                let _ = writeln!(out, "temporal transient:{}", self.arm);
            }
            FaultKind::Intermittent { period, on } => {
                let _ = writeln!(out, "temporal intermittent:{}:{period}:{on}", self.arm);
            }
        }
        if self.ecc {
            let _ = writeln!(out, "ecc 1");
        }
        if let Some(t) = self.expect {
            let _ = writeln!(out, "expect {}", t.name());
        }
        let _ = writeln!(out, "text");
        for w in self.program.text() {
            let _ = writeln!(out, "{w:08x}");
        }
        if !self.program.data().is_empty() {
            let _ = writeln!(out, "data");
            for chunk in self.program.data().chunks(32) {
                for b in chunk {
                    let _ = write!(out, "{b:02x}");
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses a `.bjcase` text back into a case.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on any malformed line.
    pub fn from_text(text: &str) -> Result<Case, String> {
        let mut name = String::new();
        let mut kind = CaseKind::Failure;
        let mut seed = None;
        let mut text_base = blackjack_isa::TEXT_BASE;
        let mut data_base = blackjack_isa::DATA_BASE;
        let mut fault = None;
        let mut temporal = FaultKind::Hard;
        let mut arm = 0u64;
        let mut ecc = false;
        let mut expect = None;
        let mut words: Vec<u32> = Vec::new();
        let mut data: Vec<u8> = Vec::new();

        #[derive(PartialEq)]
        enum Section {
            Header,
            Text,
            Data,
            Done,
        }
        let mut section = Section::Header;

        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| Err(format!("line {}: {m}: `{line}`", ln + 1));
            match section {
                Section::Header => {
                    let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
                    match key {
                        "name" => name = rest.trim().to_string(),
                        "kind" => {
                            kind = match CaseKind::parse(rest.trim()) {
                                Some(k) => k,
                                None => return err("unknown kind"),
                            }
                        }
                        "seed" => match parse_u64(rest.trim()) {
                            Some(v) => seed = Some(v),
                            None => return err("bad seed"),
                        },
                        "text_base" => match parse_u64(rest.trim()) {
                            Some(v) => text_base = v,
                            None => return err("bad text_base"),
                        },
                        "data_base" => match parse_u64(rest.trim()) {
                            Some(v) => data_base = v,
                            None => return err("bad data_base"),
                        },
                        "fault" => match parse_fault(rest.trim()) {
                            Some(f) => fault = Some(f),
                            None => return err("bad fault spec"),
                        },
                        "temporal" => match parse_temporal(rest.trim()) {
                            Some((k, a)) => {
                                temporal = k;
                                arm = a;
                            }
                            None => return err("bad temporal spec"),
                        },
                        "ecc" => match rest.trim() {
                            "1" => ecc = true,
                            "0" => ecc = false,
                            _ => return err("bad ecc flag"),
                        },
                        "expect" => match parse_taxonomy(rest.trim()) {
                            Some(t) => expect = Some(t),
                            None => return err("bad expect verdict"),
                        },
                        "text" => section = Section::Text,
                        _ => return err("unknown header key"),
                    }
                }
                Section::Text => match line {
                    "data" => section = Section::Data,
                    "end" => section = Section::Done,
                    hex => match u32::from_str_radix(hex, 16) {
                        Ok(w) if hex.len() == 8 => words.push(w),
                        _ => return err("bad text word"),
                    },
                },
                Section::Data => match line {
                    "end" => section = Section::Done,
                    hex => {
                        if hex.len() % 2 != 0 {
                            return err("odd-length data line");
                        }
                        for i in (0..hex.len()).step_by(2) {
                            match u8::from_str_radix(&hex[i..i + 2], 16) {
                                Ok(b) => data.push(b),
                                Err(_) => return err("bad data byte"),
                            }
                        }
                    }
                },
                Section::Done => return err("content after `end`"),
            }
        }
        if section != Section::Done {
            return Err("missing `end`".into());
        }
        if words.is_empty() {
            return Err("empty text section".into());
        }

        let mut b = ProgramBuilder::new(if name.is_empty() { "corpus-case" } else { &name });
        b.text_base(text_base).data_base(data_base);
        b.push_data(&data);
        for w in words {
            b.push_raw(w);
        }
        Ok(Case { name, kind, seed, program: b.build(), fault, temporal, arm, ecc, expect })
    }

    /// Writes the case to `dir/<name>.bjcase`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as strings.
    pub fn save(&self, dir: &Path) -> Result<std::path::PathBuf, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join(format!("{}.bjcase", self.name));
        std::fs::write(&path, self.to_text()).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Loads a case from a file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse error as a string.
    pub fn load(path: &Path) -> Result<Case, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Case::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parses `SITE:WAY[:BIT]`, the `bjsim --fault` spelling.
fn parse_fault(s: &str) -> Option<HardFault> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return None;
    }
    let way: usize = parts[1].parse().ok()?;
    let bit: u8 = parts.get(2).map_or(Some(0), |b| b.parse().ok())?;
    let site = match parts[0] {
        "frontend" => FaultSite::Frontend { way },
        "backend" => FaultSite::Backend { way },
        "payload" => FaultSite::PayloadRam { entry: way },
        "cachedata" => FaultSite::CacheData { index: way },
        "cachetag" => FaultSite::CacheTag { index: way },
        "sbuf" => FaultSite::StoreBuffer { entry: way },
        "dtq" => FaultSite::DtqPayload { entry: way },
        "lvq" => FaultSite::LvqPayload { entry: way },
        _ => return None,
    };
    Some(HardFault::stuck_bit(site, bit))
}

/// Parses `KIND:ARM[:PERIOD:ON]` — `hard:200`, `transient:450`,
/// `intermittent:300:64:8`.
fn parse_temporal(s: &str) -> Option<(FaultKind, u64)> {
    let parts: Vec<&str> = s.split(':').collect();
    let arm: u64 = parts.get(1)?.parse().ok()?;
    match (parts[0], parts.len()) {
        ("hard", 2) => Some((FaultKind::Hard, arm)),
        ("transient", 2) => Some((FaultKind::Transient, arm)),
        ("intermittent", 4) => {
            let period: u64 = parts[2].parse().ok()?;
            let on: u64 = parts[3].parse().ok()?;
            (period >= 1 && (1..=period).contains(&on))
                .then_some((FaultKind::Intermittent { period, on }, arm))
        }
        _ => None,
    }
}

fn parse_taxonomy(s: &str) -> Option<Taxonomy> {
    match s {
        "CE" => Some(Taxonomy::Ce),
        "DUE" => Some(Taxonomy::Due),
        "SDC" => Some(Taxonomy::Sdc),
        "benign" => Some(Taxonomy::Benign),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn round_trips_a_generated_program() {
        let prog = generate(42, GenConfig { segments: 4, ..GenConfig::default() });
        let case = Case::new(
            "rt".into(),
            CaseKind::Interesting,
            Some(42),
            prog.clone(),
            Some(HardFault::stuck_bit(FaultSite::Frontend { way: 1 }, 9)),
        );
        let text = case.to_text();
        let back = Case::from_text(&text).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.kind, CaseKind::Interesting);
        assert_eq!(back.seed, Some(42));
        assert_eq!(back.program.text(), prog.text());
        assert_eq!(back.program.data(), prog.data());
        assert_eq!(back.program.text_base(), prog.text_base());
        assert_eq!(back.program.data_base(), prog.data_base());
        assert_eq!(back.program.entry(), prog.entry());
        assert_eq!(back.fault, case.fault);
        // Serialization is stable: a second trip is byte-identical.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn default_fault_dimensions_write_no_headers() {
        let prog = generate(42, GenConfig { segments: 4, ..GenConfig::default() });
        let case = Case::new(
            "legacy".into(),
            CaseKind::Failure,
            None,
            prog,
            Some(HardFault::stuck_bit(FaultSite::Backend { way: 2 }, 5)),
        );
        let text = case.to_text();
        for header in ["temporal", "ecc", "expect"] {
            assert!(
                !text.lines().any(|l| l.starts_with(header)),
                "default-dimension case grew a `{header}` header"
            );
        }
    }

    #[test]
    fn round_trips_fault_universe_dimensions() {
        let prog = generate(43, GenConfig { segments: 4, ..GenConfig::default() });
        for (site, temporal, arm, ecc, expect) in [
            (
                FaultSite::LvqPayload { entry: 3 },
                FaultKind::Hard,
                120,
                true,
                Some(Taxonomy::Ce),
            ),
            (
                FaultSite::CacheData { index: 0 },
                FaultKind::Transient,
                77,
                false,
                Some(Taxonomy::Sdc),
            ),
            (
                FaultSite::StoreBuffer { entry: 1 },
                FaultKind::Intermittent { period: 64, on: 8 },
                300,
                false,
                Some(Taxonomy::Due),
            ),
            (FaultSite::DtqPayload { entry: 5 }, FaultKind::Hard, 0, false, None),
            (
                FaultSite::CacheTag { index: 9 },
                FaultKind::Transient,
                1,
                false,
                Some(Taxonomy::Benign),
            ),
        ] {
            let mut case = Case::new(
                "dims".into(),
                CaseKind::Interesting,
                None,
                prog.clone(),
                Some(HardFault::stuck_bit(site, 2)),
            );
            case.temporal = temporal;
            case.arm = arm;
            case.ecc = ecc;
            case.expect = expect;
            let text = case.to_text();
            let back = Case::from_text(&text).unwrap_or_else(|e| panic!("{site:?}: {e}"));
            assert_eq!(back.fault, case.fault, "{site:?}");
            assert_eq!(back.temporal, temporal, "{site:?}");
            assert_eq!(back.arm, arm, "{site:?}");
            assert_eq!(back.ecc, ecc, "{site:?}");
            assert_eq!(back.expect, expect, "{site:?}");
            assert_eq!(back.to_text(), text, "{site:?} second trip not byte-stable");
            let plan = back.plan().expect("case carries a fault");
            assert_eq!(plan.kind(), temporal, "{site:?}");
            assert_eq!(plan.arm_cycle(), arm, "{site:?}");
        }
    }

    #[test]
    fn rejects_malformed_cases() {
        assert!(Case::from_text("").is_err());
        assert!(Case::from_text("name x\ntext\nzzzzzzzz\nend\n").is_err());
        assert!(Case::from_text("name x\ntext\n00000013\n").is_err(), "missing end");
        assert!(Case::from_text("bogus line\ntext\n00000013\nend\n").is_err());
        for bad in [
            "temporal sometimes:3",
            "temporal intermittent:1:0:0",
            "temporal intermittent:1:4:9",
            "temporal transient",
            "ecc maybe",
            "expect corrected",
            "fault lvq",
            "fault tlb:0:1",
        ] {
            let text = format!("name x\n{bad}\ntext\n00000013\nend\n");
            assert!(Case::from_text(&text).is_err(), "`{bad}` should be rejected");
        }
    }
}
