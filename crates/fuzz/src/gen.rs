//! Deterministic random BJ-ISA program generator, constrained to
//! lint-clean programs.
//!
//! The generator builds programs directly from [`Inst`] values via
//! [`ProgramBuilder`] under a register discipline that makes every lint
//! in `blackjack-analysis` pass *by construction*:
//!
//! * **Work registers** (`x5..=x12`, `f0..=f7`) are initialized in the
//!   prologue and only ever written in *accumulate form* (`d = op(d, s)`),
//!   so every definition is read by the instruction that replaces it —
//!   no dead defs, no uninitialized reads.
//! * **Clobbering producers** (loads, converts, compares, moves) target
//!   the scratch registers `x26`/`f9` and are immediately followed by a
//!   consumer that folds the scratch value into a work register, so the
//!   pair is self-contained and never straddles a branch.
//! * **Control** is structured: counted loops (a backward `bne` on a
//!   dedicated counter) and forward skips (a placeholder branch patched
//!   once the body length is known, exercising
//!   [`ProgramBuilder::patch`]). No indirect jumps, so the CFG is fully
//!   resolvable and every block reachable.
//! * **Memory traffic** stays inside a private data arena addressed off
//!   `x20`, width-aligned, initialized with deterministic bytes.
//!
//! The epilogue publishes every work register to memory (`sd`/`fsd`) and
//! halts, so the final value of each register is architecturally
//! observable — a wrong value anywhere becomes a memory difference the
//! differential driver can see.

use blackjack_isa::{
    AluOp, BranchCond, CmpOp, DivOp, FpAluOp, FpDivOp, FReg, Inst, MemWidth, MulOp, Program,
    ProgramBuilder, Reg, INST_BYTES,
};
use blackjack_rng::Rng;

/// Integer work registers (accumulate-only writes).
const WORK_X: [u8; 8] = [5, 6, 7, 8, 9, 10, 11, 12];
/// FP work registers (accumulate-only writes).
const WORK_F: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
/// Data-arena base pointer.
const BASE: u8 = 20;
/// Loop counter.
const COUNTER: u8 = 28;
/// Integer scratch: written by clobbering producers, consumed immediately.
const TMP_X: u8 = 26;
/// FP scratch, same discipline.
const TMP_F: u8 = 9;
/// Bytes of random load/store traffic arena.
const ARENA_BYTES: usize = 4096;
/// `DATA_BASE >> 13`, the `lui` immediate that materializes the arena base.
const BASE_LUI_IMM: i32 = (blackjack_isa::DATA_BASE >> 13) as i32;

/// Tunable knobs for one generated program.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of code segments (straight-line runs, loops, skips).
    pub segments: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { segments: 10 }
    }
}

fn x(n: u8) -> Reg {
    Reg::new(n)
}

fn f(n: u8) -> FReg {
    FReg::new(n)
}

/// Generates one lint-clean program from `seed`.
///
/// The same `(seed, cfg.segments)` always yields the same program, bit
/// for bit — the fuzzer's reproducibility contract.
///
/// # Panics
///
/// Panics if the generated program fails its own lint check — that is a
/// generator bug, and the panic message names the offending seed.
pub fn generate(seed: u64, cfg: GenConfig) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("fuzz-{seed:#x}"));

    // Deterministic nonzero arena contents: loads see varied bit
    // patterns (including ones that reinterpret as NaNs and denormals
    // through fld — the shared exec helpers keep both engines honest).
    for _ in 0..ARENA_BYTES / 8 {
        b.push_data_u64(rng.next_u64() | 1);
    }

    // Prologue: arena base, then every work register.
    b.push(Inst::Lui { rd: x(BASE), imm: BASE_LUI_IMM }).unwrap();
    for (i, &w) in WORK_X.iter().enumerate() {
        let imm = rng.random_range(-512i32..=511) * (i as i32 + 1);
        b.push(Inst::AluImm { op: AluOp::Add, rd: x(w), rs1: Reg::ZERO, imm })
            .unwrap();
    }
    for (i, &wf) in WORK_F.iter().enumerate() {
        // fcvt.d.l from an initialized work register: small, varied doubles.
        b.push(Inst::CvtIf { fd: f(wf), rs1: x(WORK_X[i % WORK_X.len()]) })
            .unwrap();
    }

    for _ in 0..cfg.segments.max(1) {
        match rng.random_range(0u32..4) {
            0 => emit_loop(&mut b, &mut rng),
            1 => emit_skip(&mut b, &mut rng),
            _ => emit_straight(&mut b, &mut rng),
        }
    }

    // Epilogue: publish every work register, then halt.
    for (i, &w) in WORK_X.iter().enumerate() {
        let offset = (ARENA_BYTES - 16 * 16 + i * 8) as i32;
        b.push(Inst::Store { width: MemWidth::Double, rs1: x(BASE), rs2: x(w), offset })
            .unwrap();
    }
    for (i, &wf) in WORK_F.iter().enumerate() {
        let offset = (ARENA_BYTES - 8 * 16 + i * 8) as i32;
        b.push(Inst::FStore { rs1: x(BASE), fs2: f(wf), offset })
            .unwrap();
    }
    b.push(Inst::Halt).unwrap();

    let prog = b.build();
    debug_assert!(
        blackjack_analysis::lint_program(&prog)
            .map(|r| r.is_clean())
            .unwrap_or(false),
        "generator produced a lint-dirty program for seed {seed:#x}"
    );
    prog
}

/// A straight-line run of 2–8 atoms.
fn emit_straight(b: &mut ProgramBuilder, rng: &mut Rng) {
    let n = rng.random_range(2usize..=8);
    for _ in 0..n {
        emit_atom(b, rng);
    }
}

/// A counted loop: `x28 = n; loop: body; x28 -= 1; bne x28, x0, loop`.
fn emit_loop(b: &mut ProgramBuilder, rng: &mut Rng) {
    let trips = rng.random_range(1i32..=8);
    b.push(Inst::AluImm { op: AluOp::Add, rd: x(COUNTER), rs1: Reg::ZERO, imm: trips })
        .unwrap();
    let top = b.next_pc();
    let body = rng.random_range(2usize..=6);
    for _ in 0..body {
        emit_atom(b, rng);
    }
    b.push(Inst::AluImm { op: AluOp::Add, rd: x(COUNTER), rs1: x(COUNTER), imm: -1 })
        .unwrap();
    let branch_pc = b.next_pc();
    let offset = (top as i64 - branch_pc as i64) as i32;
    b.push(Inst::Branch { cond: BranchCond::Ne, rs1: x(COUNTER), rs2: Reg::ZERO, offset })
        .unwrap();
}

/// A forward skip: a data-dependent branch over 1–4 atoms, backpatched.
fn emit_skip(b: &mut ProgramBuilder, rng: &mut Rng) {
    let cond = match rng.random_range(0u32..6) {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        _ => BranchCond::Geu,
    };
    let rs1 = x(pick(rng, &WORK_X));
    let rs2 = if rng.random_bool(0.5) { Reg::ZERO } else { x(pick(rng, &WORK_X)) };
    let branch_pc = b.next_pc();
    let idx = b.len();
    // Placeholder offset: patched below once the body length is known.
    b.push(Inst::Branch { cond, rs1, rs2, offset: INST_BYTES as i32 }).unwrap();
    let body = rng.random_range(1usize..=4);
    for _ in 0..body {
        emit_atom(b, rng);
    }
    let offset = (b.next_pc() as i64 - branch_pc as i64) as i32;
    b.patch(idx, Inst::Branch { cond, rs1, rs2, offset }).unwrap();
}

fn pick(rng: &mut Rng, set: &[u8]) -> u8 {
    set[rng.random_range(0usize..set.len())]
}

fn arena_offset(rng: &mut Rng, width: MemWidth) -> i32 {
    // Stay clear of the publication area at the top of the arena.
    let bytes = match width {
        MemWidth::Byte => 1,
        MemWidth::Word => 4,
        MemWidth::Double => 8,
    };
    let slots = (ARENA_BYTES - 16 * 16) / bytes;
    (rng.random_range(0usize..slots) * bytes) as i32
}

fn alu_op(rng: &mut Rng) -> AluOp {
    match rng.random_range(0u32..10) {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Slt,
        _ => AluOp::Sltu,
    }
}

fn fp_op(rng: &mut Rng) -> FpAluOp {
    match rng.random_range(0u32..4) {
        0 => FpAluOp::Fadd,
        1 => FpAluOp::Fsub,
        2 => FpAluOp::Fmin,
        _ => FpAluOp::Fmax,
    }
}

fn mem_width(rng: &mut Rng) -> MemWidth {
    match rng.random_range(0u32..3) {
        0 => MemWidth::Byte,
        1 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

/// Emits one self-contained atom: 1–2 instructions that respect the
/// register discipline (accumulate-form work-register writes, scratch
/// producers paired with an immediate consumer).
fn emit_atom(b: &mut ProgramBuilder, rng: &mut Rng) {
    let w = x(pick(rng, &WORK_X));
    let w2 = x(pick(rng, &WORK_X));
    let wf = f(pick(rng, &WORK_F));
    let wf2 = f(pick(rng, &WORK_F));
    match rng.random_range(0u32..16) {
        0 => {
            b.push(Inst::Alu { op: alu_op(rng), rd: w, rs1: w, rs2: w2 }).unwrap();
        }
        1 => {
            let imm = rng.random_range(-2048i32..=2047);
            // `sub` has no immediate form; fold it onto `add`.
            let op = match alu_op(rng) {
                AluOp::Sub => AluOp::Add,
                op => op,
            };
            b.push(Inst::AluImm { op, rd: w, rs1: w, imm }).unwrap();
        }
        2 => {
            let op = if rng.random_bool(0.5) { MulOp::Mul } else { MulOp::Mulh };
            b.push(Inst::Mul { op, rd: w, rs1: w, rs2: w2 }).unwrap();
        }
        3 => {
            let op = if rng.random_bool(0.5) { DivOp::Div } else { DivOp::Rem };
            b.push(Inst::Div { op, rd: w, rs1: w, rs2: w2 }).unwrap();
        }
        4 => {
            // Load into scratch, fold into a work register.
            let width = mem_width(rng);
            let offset = arena_offset(rng, width);
            b.push(Inst::Load { width, rd: x(TMP_X), rs1: x(BASE), offset }).unwrap();
            b.push(Inst::Alu { op: AluOp::Xor, rd: w, rs1: w, rs2: x(TMP_X) }).unwrap();
        }
        5 => {
            let width = mem_width(rng);
            let offset = arena_offset(rng, width);
            b.push(Inst::Store { width, rs1: x(BASE), rs2: w, offset }).unwrap();
        }
        6 => {
            let offset = arena_offset(rng, MemWidth::Double);
            b.push(Inst::FLoad { fd: f(TMP_F), rs1: x(BASE), offset }).unwrap();
            b.push(Inst::FpAlu { op: fp_op(rng), fd: wf, fs1: wf, fs2: f(TMP_F) }).unwrap();
        }
        7 => {
            let offset = arena_offset(rng, MemWidth::Double);
            b.push(Inst::FStore { rs1: x(BASE), fs2: wf, offset }).unwrap();
        }
        8 => {
            b.push(Inst::FpAlu { op: fp_op(rng), fd: wf, fs1: wf, fs2: wf2 }).unwrap();
        }
        9 => {
            b.push(Inst::FpMul { fd: wf, fs1: wf, fs2: wf2 }).unwrap();
        }
        10 => {
            b.push(Inst::FpDiv { op: FpDivOp::Fdiv, fd: wf, fs1: wf, fs2: wf2 }).unwrap();
        }
        11 => {
            // fsqrt in self-form: reads the register it clobbers.
            b.push(Inst::FpDiv { op: FpDivOp::Fsqrt, fd: wf, fs1: wf, fs2: wf }).unwrap();
        }
        12 => {
            let op = match rng.random_range(0u32..3) {
                0 => CmpOp::Feq,
                1 => CmpOp::Flt,
                _ => CmpOp::Fle,
            };
            b.push(Inst::FpCmp { op, rd: x(TMP_X), fs1: wf, fs2: wf2 }).unwrap();
            b.push(Inst::Alu { op: AluOp::Add, rd: w, rs1: w, rs2: x(TMP_X) }).unwrap();
        }
        13 => {
            b.push(Inst::CvtIf { fd: f(TMP_F), rs1: w }).unwrap();
            b.push(Inst::FpAlu { op: FpAluOp::Fadd, fd: wf, fs1: wf, fs2: f(TMP_F) }).unwrap();
        }
        14 => {
            b.push(Inst::CvtFi { rd: x(TMP_X), fs1: wf }).unwrap();
            b.push(Inst::Alu { op: AluOp::Xor, rd: w, rs1: w, rs2: x(TMP_X) }).unwrap();
        }
        _ => {
            if rng.random_bool(0.5) {
                b.push(Inst::BitsToFp { fd: f(TMP_F), rs1: w }).unwrap();
                b.push(Inst::FpAlu { op: FpAluOp::Fmin, fd: wf, fs1: wf, fs2: f(TMP_F) })
                    .unwrap();
            } else {
                b.push(Inst::FMove { fd: f(TMP_F), fs1: wf }).unwrap();
                b.push(Inst::FpAlu { op: FpAluOp::Fmax, fd: wf2, fs1: wf2, fs2: f(TMP_F) })
                    .unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackjack_analysis::lint_program;

    #[test]
    fn generated_programs_are_lint_clean() {
        for seed in 0..60 {
            let prog = generate(seed, GenConfig::default());
            let report = lint_program(&prog).expect("generated program has a CFG");
            assert!(report.is_clean(), "seed {seed}: {:?}", report);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0xB1AC, GenConfig { segments: 14 });
        let b = generate(0xB1AC, GenConfig { segments: 14 });
        assert_eq!(a.text(), b.text());
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(1, GenConfig::default());
        let b = generate(2, GenConfig::default());
        assert_ne!(a.text(), b.text());
    }

    #[test]
    fn generated_programs_halt_in_the_interpreter() {
        for seed in 0..20 {
            let prog = generate(seed, GenConfig::default());
            let mut it = blackjack_isa::Interp::new(&prog);
            it.run(1_000_000).expect("interprets cleanly");
            assert!(it.halted(), "seed {seed} must halt");
        }
    }
}
