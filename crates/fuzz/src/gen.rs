//! Deterministic random BJ-ISA program generator, constrained to
//! lint-clean programs.
//!
//! The generator builds programs directly from [`Inst`] values via
//! [`ProgramBuilder`] under a register discipline that makes every lint
//! in `blackjack-analysis` pass *by construction*:
//!
//! * **Work registers** (`x5..=x12`, `f0..=f7`) are initialized in the
//!   prologue and only ever written in *accumulate form* (`d = op(d, s)`),
//!   so every definition is read by the instruction that replaces it —
//!   no dead defs, no uninitialized reads.
//! * **Clobbering producers** (loads, converts, compares, moves) target
//!   the scratch registers `x26`/`f9` and are immediately followed by a
//!   consumer that folds the scratch value into a work register, so the
//!   pair is self-contained and never straddles a branch.
//! * **Control** is structured: counted loops (a backward `bne` on a
//!   dedicated per-function counter) and forward skips (a placeholder
//!   branch patched once the body length is known, exercising
//!   [`ProgramBuilder::patch`]). The only indirect jumps are proven
//!   returns, so the interprocedural analysis fully resolves the CFG
//!   and every block is reachable.
//! * **Calls** form a bounded chain: `main` calls `helper1`, which may
//!   call `helper2` ([`GenConfig::call_depth`] levels total, no
//!   recursion). Non-leaf helpers save/restore `ra` through a 16-byte
//!   stack frame (`addi sp, sp, -16; sd ra, 8(sp)` … `ld ra, 8(sp);
//!   addi sp, sp, 16; ret`), exactly the shape the return-address
//!   discipline proof in `blackjack-analysis` accepts, so generated
//!   programs exercise call/return machinery (RAS push/pop, return
//!   resolution) while staying lint-clean. Each nesting level owns its
//!   loop counter (`x28`–`x30`) so a callee never corrupts a live trip
//!   count.
//! * **Memory traffic** stays inside a private data arena addressed off
//!   `x20`, width-aligned, initialized with deterministic bytes.
//!
//! The epilogue publishes every work register to memory (`sd`/`fsd`) and
//! halts, so the final value of each register is architecturally
//! observable — a wrong value anywhere becomes a memory difference the
//! differential driver can see.

use blackjack_isa::{
    AluOp, BranchCond, CmpOp, DivOp, FpAluOp, FpDivOp, FReg, Inst, MemWidth, MulOp, Program,
    ProgramBuilder, Reg, INST_BYTES,
};
use blackjack_rng::Rng;

/// Integer work registers (accumulate-only writes).
const WORK_X: [u8; 8] = [5, 6, 7, 8, 9, 10, 11, 12];
/// FP work registers (accumulate-only writes).
const WORK_F: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
/// Data-arena base pointer.
const BASE: u8 = 20;
/// Deepest supported call chain: `main` → `helper1` → `helper2`.
const MAX_CALL_DEPTH: usize = 3;
/// Per-nesting-level loop counters: a callee's loops must not clobber a
/// caller's live trip count.
const COUNTERS: [u8; MAX_CALL_DEPTH] = [28, 29, 30];
/// Return-address register (`ra` = x1).
const RA: u8 = 1;
/// Stack pointer (`sp` = x2, entry-defined by the loader).
const SP: u8 = 2;
/// Non-leaf helper frame: 16 bytes, `ra` spilled at `8(sp)`.
const FRAME_BYTES: i32 = 16;
/// `ra` spill slot offset within the frame.
const RA_SLOT: i32 = 8;
/// Integer scratch: written by clobbering producers, consumed immediately.
const TMP_X: u8 = 26;
/// FP scratch, same discipline.
const TMP_F: u8 = 9;
/// Bytes of random load/store traffic arena.
const ARENA_BYTES: usize = 4096;
/// `DATA_BASE >> 13`, the `lui` immediate that materializes the arena base.
const BASE_LUI_IMM: i32 = (blackjack_isa::DATA_BASE >> 13) as i32;

/// Tunable knobs for one generated program.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of code segments (straight-line runs, loops, skips) in
    /// `main`; helpers draw their own smaller counts.
    pub segments: usize,
    /// Function-nesting levels: `1` = `main` only (no calls), `2` adds
    /// a helper, `3` a helper-of-helper. Clamped to
    /// `1..=`[`MAX_CALL_DEPTH`]. Every non-leaf level is guaranteed at
    /// least one call site.
    pub call_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { segments: 10, call_depth: 2 }
    }
}

fn x(n: u8) -> Reg {
    Reg::new(n)
}

fn f(n: u8) -> FReg {
    FReg::new(n)
}

/// Generates one lint-clean program from `seed`.
///
/// The same `(seed, cfg.segments)` always yields the same program, bit
/// for bit — the fuzzer's reproducibility contract.
///
/// # Panics
///
/// Panics if the generated program fails its own lint check — that is a
/// generator bug, and the panic message names the offending seed.
pub fn generate(seed: u64, cfg: GenConfig) -> Program {
    let depth = cfg.call_depth.clamp(1, MAX_CALL_DEPTH);
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("fuzz-{seed:#x}"));

    // Deterministic nonzero arena contents: loads see varied bit
    // patterns (including ones that reinterpret as NaNs and denormals
    // through fld — the shared exec helpers keep both engines honest).
    for _ in 0..ARENA_BYTES / 8 {
        b.push_data_u64(rng.next_u64() | 1);
    }

    // Prologue: arena base, then every work register.
    b.push(Inst::Lui { rd: x(BASE), imm: BASE_LUI_IMM }).unwrap();
    for (i, &w) in WORK_X.iter().enumerate() {
        let imm = rng.random_range(-512i32..=511) * (i as i32 + 1);
        b.push(Inst::AluImm { op: AluOp::Add, rd: x(w), rs1: Reg::ZERO, imm })
            .unwrap();
    }
    for (i, &wf) in WORK_F.iter().enumerate() {
        // fcvt.d.l from an initialized work register: small, varied doubles.
        b.push(Inst::CvtIf { fd: f(wf), rs1: x(WORK_X[i % WORK_X.len()]) })
            .unwrap();
    }

    // Main body. Calls carry placeholder offsets until the helper
    // entry PCs are known; each is recorded as (inst index, call pc,
    // callee level) for patching.
    let mut calls: Vec<(usize, u64, usize)> = Vec::new();
    let mut called = false;
    for _ in 0..cfg.segments.max(1) {
        emit_segment(&mut b, &mut rng, 0, depth, &mut calls, &mut called);
    }
    if depth > 1 && !called {
        // Every non-leaf level makes at least one call.
        emit_call(&mut b, 0, &mut calls);
    }

    // Epilogue: publish every work register, then halt.
    for (i, &w) in WORK_X.iter().enumerate() {
        let offset = (ARENA_BYTES - 16 * 16 + i * 8) as i32;
        b.push(Inst::Store { width: MemWidth::Double, rs1: x(BASE), rs2: x(w), offset })
            .unwrap();
    }
    for (i, &wf) in WORK_F.iter().enumerate() {
        let offset = (ARENA_BYTES - 8 * 16 + i * 8) as i32;
        b.push(Inst::FStore { rs1: x(BASE), fs2: f(wf), offset })
            .unwrap();
    }
    b.push(Inst::Halt).unwrap();

    // Helpers live after the halt so straight-line execution can never
    // fall into them; they are reachable only through their call edges.
    let mut entries = [0u64; MAX_CALL_DEPTH];
    for (level, entry) in entries.iter_mut().enumerate().take(depth).skip(1) {
        *entry = b.next_pc();
        emit_helper(&mut b, &mut rng, level, depth, &mut calls);
    }

    // Patch every recorded call now its callee's entry PC is known.
    for &(idx, call_pc, callee) in &calls {
        let offset = (entries[callee] as i64 - call_pc as i64) as i32;
        b.patch(idx, Inst::Jal { rd: x(RA), offset }).unwrap();
    }

    let prog = b.build();
    debug_assert!(
        blackjack_analysis::lint_program(&prog)
            .map(|r| r.is_clean())
            .unwrap_or(false),
        "generator produced a lint-dirty program for seed {seed:#x}"
    );
    prog
}

/// One code segment at nesting `level`: loop, skip, straight run, or
/// (in non-leaf functions) a call to the next level down.
fn emit_segment(
    b: &mut ProgramBuilder,
    rng: &mut Rng,
    level: usize,
    depth: usize,
    calls: &mut Vec<(usize, u64, usize)>,
    called: &mut bool,
) {
    let can_call = level + 1 < depth;
    match rng.random_range(0u32..5) {
        0 => emit_loop(b, rng, level),
        1 => emit_skip(b, rng),
        2 if can_call => {
            emit_call(b, level, calls);
            *called = true;
        }
        _ => emit_straight(b, rng),
    }
}

/// A call from `level` to the `level + 1` helper, with a placeholder
/// offset recorded for patching once helper entry PCs are known.
fn emit_call(b: &mut ProgramBuilder, level: usize, calls: &mut Vec<(usize, u64, usize)>) {
    let idx = b.len();
    let pc = b.next_pc();
    b.push(Inst::Jal { rd: x(RA), offset: INST_BYTES as i32 }).unwrap();
    calls.push((idx, pc, level + 1));
}

/// One helper function at nesting `level`: an optional `ra` frame (only
/// non-leaf helpers call onward, so only they need one), 2–4 body
/// segments, and a `ret`. The frame shape is exactly what the
/// return-address discipline proof accepts: `ra` spilled full-width,
/// sp-relative, strictly below the entry sp, reloaded from the same
/// slot, sp balanced at the return.
fn emit_helper(
    b: &mut ProgramBuilder,
    rng: &mut Rng,
    level: usize,
    depth: usize,
    calls: &mut Vec<(usize, u64, usize)>,
) {
    let leaf = level + 1 == depth;
    if !leaf {
        b.push(Inst::AluImm { op: AluOp::Add, rd: x(SP), rs1: x(SP), imm: -FRAME_BYTES })
            .unwrap();
        b.push(Inst::Store { width: MemWidth::Double, rs1: x(SP), rs2: x(RA), offset: RA_SLOT })
            .unwrap();
    }
    let mut called = false;
    let segments = rng.random_range(2usize..=4);
    for _ in 0..segments {
        emit_segment(b, rng, level, depth, calls, &mut called);
    }
    if !leaf && !called {
        emit_call(b, level, calls);
    }
    if !leaf {
        b.push(Inst::Load { width: MemWidth::Double, rd: x(RA), rs1: x(SP), offset: RA_SLOT })
            .unwrap();
        b.push(Inst::AluImm { op: AluOp::Add, rd: x(SP), rs1: x(SP), imm: FRAME_BYTES })
            .unwrap();
    }
    b.push(Inst::Jalr { rd: Reg::ZERO, rs1: x(RA), offset: 0 }).unwrap();
}

/// A straight-line run of 2–8 atoms.
fn emit_straight(b: &mut ProgramBuilder, rng: &mut Rng) {
    let n = rng.random_range(2usize..=8);
    for _ in 0..n {
        emit_atom(b, rng);
    }
}

/// A counted loop on this level's counter `c`:
/// `c = n; loop: body; c -= 1; bne c, x0, loop`.
fn emit_loop(b: &mut ProgramBuilder, rng: &mut Rng, level: usize) {
    let counter = COUNTERS[level];
    let trips = rng.random_range(1i32..=8);
    b.push(Inst::AluImm { op: AluOp::Add, rd: x(counter), rs1: Reg::ZERO, imm: trips })
        .unwrap();
    let top = b.next_pc();
    let body = rng.random_range(2usize..=6);
    for _ in 0..body {
        emit_atom(b, rng);
    }
    b.push(Inst::AluImm { op: AluOp::Add, rd: x(counter), rs1: x(counter), imm: -1 })
        .unwrap();
    let branch_pc = b.next_pc();
    let offset = (top as i64 - branch_pc as i64) as i32;
    b.push(Inst::Branch { cond: BranchCond::Ne, rs1: x(counter), rs2: Reg::ZERO, offset })
        .unwrap();
}

/// A forward skip: a data-dependent branch over 1–4 atoms, backpatched.
fn emit_skip(b: &mut ProgramBuilder, rng: &mut Rng) {
    let cond = match rng.random_range(0u32..6) {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        _ => BranchCond::Geu,
    };
    let rs1 = x(pick(rng, &WORK_X));
    let rs2 = if rng.random_bool(0.5) { Reg::ZERO } else { x(pick(rng, &WORK_X)) };
    let branch_pc = b.next_pc();
    let idx = b.len();
    // Placeholder offset: patched below once the body length is known.
    b.push(Inst::Branch { cond, rs1, rs2, offset: INST_BYTES as i32 }).unwrap();
    let body = rng.random_range(1usize..=4);
    for _ in 0..body {
        emit_atom(b, rng);
    }
    let offset = (b.next_pc() as i64 - branch_pc as i64) as i32;
    b.patch(idx, Inst::Branch { cond, rs1, rs2, offset }).unwrap();
}

fn pick(rng: &mut Rng, set: &[u8]) -> u8 {
    set[rng.random_range(0usize..set.len())]
}

fn arena_offset(rng: &mut Rng, width: MemWidth) -> i32 {
    // Stay clear of the publication area at the top of the arena.
    let bytes = match width {
        MemWidth::Byte => 1,
        MemWidth::Word => 4,
        MemWidth::Double => 8,
    };
    let slots = (ARENA_BYTES - 16 * 16) / bytes;
    (rng.random_range(0usize..slots) * bytes) as i32
}

fn alu_op(rng: &mut Rng) -> AluOp {
    match rng.random_range(0u32..10) {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Slt,
        _ => AluOp::Sltu,
    }
}

fn fp_op(rng: &mut Rng) -> FpAluOp {
    match rng.random_range(0u32..4) {
        0 => FpAluOp::Fadd,
        1 => FpAluOp::Fsub,
        2 => FpAluOp::Fmin,
        _ => FpAluOp::Fmax,
    }
}

fn mem_width(rng: &mut Rng) -> MemWidth {
    match rng.random_range(0u32..3) {
        0 => MemWidth::Byte,
        1 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

/// Emits one self-contained atom: 1–2 instructions that respect the
/// register discipline (accumulate-form work-register writes, scratch
/// producers paired with an immediate consumer).
fn emit_atom(b: &mut ProgramBuilder, rng: &mut Rng) {
    let w = x(pick(rng, &WORK_X));
    let w2 = x(pick(rng, &WORK_X));
    let wf = f(pick(rng, &WORK_F));
    let wf2 = f(pick(rng, &WORK_F));
    match rng.random_range(0u32..16) {
        0 => {
            b.push(Inst::Alu { op: alu_op(rng), rd: w, rs1: w, rs2: w2 }).unwrap();
        }
        1 => {
            let imm = rng.random_range(-2048i32..=2047);
            // `sub` has no immediate form; fold it onto `add`.
            let op = match alu_op(rng) {
                AluOp::Sub => AluOp::Add,
                op => op,
            };
            b.push(Inst::AluImm { op, rd: w, rs1: w, imm }).unwrap();
        }
        2 => {
            let op = if rng.random_bool(0.5) { MulOp::Mul } else { MulOp::Mulh };
            b.push(Inst::Mul { op, rd: w, rs1: w, rs2: w2 }).unwrap();
        }
        3 => {
            let op = if rng.random_bool(0.5) { DivOp::Div } else { DivOp::Rem };
            b.push(Inst::Div { op, rd: w, rs1: w, rs2: w2 }).unwrap();
        }
        4 => {
            // Load into scratch, fold into a work register.
            let width = mem_width(rng);
            let offset = arena_offset(rng, width);
            b.push(Inst::Load { width, rd: x(TMP_X), rs1: x(BASE), offset }).unwrap();
            b.push(Inst::Alu { op: AluOp::Xor, rd: w, rs1: w, rs2: x(TMP_X) }).unwrap();
        }
        5 => {
            let width = mem_width(rng);
            let offset = arena_offset(rng, width);
            b.push(Inst::Store { width, rs1: x(BASE), rs2: w, offset }).unwrap();
        }
        6 => {
            let offset = arena_offset(rng, MemWidth::Double);
            b.push(Inst::FLoad { fd: f(TMP_F), rs1: x(BASE), offset }).unwrap();
            b.push(Inst::FpAlu { op: fp_op(rng), fd: wf, fs1: wf, fs2: f(TMP_F) }).unwrap();
        }
        7 => {
            let offset = arena_offset(rng, MemWidth::Double);
            b.push(Inst::FStore { rs1: x(BASE), fs2: wf, offset }).unwrap();
        }
        8 => {
            b.push(Inst::FpAlu { op: fp_op(rng), fd: wf, fs1: wf, fs2: wf2 }).unwrap();
        }
        9 => {
            b.push(Inst::FpMul { fd: wf, fs1: wf, fs2: wf2 }).unwrap();
        }
        10 => {
            b.push(Inst::FpDiv { op: FpDivOp::Fdiv, fd: wf, fs1: wf, fs2: wf2 }).unwrap();
        }
        11 => {
            // fsqrt in self-form: reads the register it clobbers.
            b.push(Inst::FpDiv { op: FpDivOp::Fsqrt, fd: wf, fs1: wf, fs2: wf }).unwrap();
        }
        12 => {
            let op = match rng.random_range(0u32..3) {
                0 => CmpOp::Feq,
                1 => CmpOp::Flt,
                _ => CmpOp::Fle,
            };
            b.push(Inst::FpCmp { op, rd: x(TMP_X), fs1: wf, fs2: wf2 }).unwrap();
            b.push(Inst::Alu { op: AluOp::Add, rd: w, rs1: w, rs2: x(TMP_X) }).unwrap();
        }
        13 => {
            b.push(Inst::CvtIf { fd: f(TMP_F), rs1: w }).unwrap();
            b.push(Inst::FpAlu { op: FpAluOp::Fadd, fd: wf, fs1: wf, fs2: f(TMP_F) }).unwrap();
        }
        14 => {
            b.push(Inst::CvtFi { rd: x(TMP_X), fs1: wf }).unwrap();
            b.push(Inst::Alu { op: AluOp::Xor, rd: w, rs1: w, rs2: x(TMP_X) }).unwrap();
        }
        _ => {
            if rng.random_bool(0.5) {
                b.push(Inst::BitsToFp { fd: f(TMP_F), rs1: w }).unwrap();
                b.push(Inst::FpAlu { op: FpAluOp::Fmin, fd: wf, fs1: wf, fs2: f(TMP_F) })
                    .unwrap();
            } else {
                b.push(Inst::FMove { fd: f(TMP_F), fs1: wf }).unwrap();
                b.push(Inst::FpAlu { op: FpAluOp::Fmax, fd: wf2, fs1: wf2, fs2: f(TMP_F) })
                    .unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackjack_analysis::lint_program;

    #[test]
    fn generated_programs_are_lint_clean() {
        for seed in 0..60 {
            let prog = generate(seed, GenConfig::default());
            let report = lint_program(&prog).expect("generated program has a CFG");
            assert!(report.is_clean(), "seed {seed}: {:?}", report);
        }
    }

    #[test]
    fn generated_programs_are_lint_clean_at_every_depth() {
        for depth in 1..=MAX_CALL_DEPTH {
            for seed in 0..20 {
                let prog = generate(seed, GenConfig { segments: 6, call_depth: depth });
                let report = lint_program(&prog).expect("generated program has a CFG");
                assert!(report.is_clean(), "depth {depth} seed {seed}: {:?}", report);
            }
        }
    }

    #[test]
    fn call_bearing_programs_fully_resolve() {
        use blackjack_analysis::Interproc;
        for seed in 0..20 {
            let prog = generate(seed, GenConfig { segments: 6, call_depth: 3 });
            let ip = Interproc::analyze(&prog).expect("generated program has a CFG");
            assert!(ip.is_resolved(), "seed {seed}: {:?}", ip.resolution());
            assert!(ip.fully_resolved(), "seed {seed}: unresolved jalr remains");
            assert!(
                ip.callgraph().functions.len() >= 2,
                "seed {seed}: expected a helper function"
            );
        }
    }

    #[test]
    fn depth_one_emits_no_calls() {
        use blackjack_isa::Inst;
        let prog = generate(11, GenConfig { segments: 8, call_depth: 1 });
        let cfg = blackjack_analysis::Cfg::build(&prog).unwrap();
        assert!(
            !cfg.insts().iter().any(|i| matches!(i, Inst::Jal { rd, .. } if !rd.is_zero())
                || matches!(i, Inst::Jalr { .. })),
            "depth 1 must be call-free"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0xB1AC, GenConfig { segments: 14, call_depth: 3 });
        let b = generate(0xB1AC, GenConfig { segments: 14, call_depth: 3 });
        assert_eq!(a.text(), b.text());
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(1, GenConfig::default());
        let b = generate(2, GenConfig::default());
        assert_ne!(a.text(), b.text());
    }

    #[test]
    fn generated_programs_halt_in_the_interpreter() {
        for seed in 0..20 {
            let prog = generate(seed, GenConfig::default());
            let mut it = blackjack_isa::Interp::new(&prog);
            it.run(1_000_000).expect("interprets cleanly");
            assert!(it.halted(), "seed {seed} must halt");
        }
    }

    #[test]
    fn call_bearing_programs_halt_in_the_interpreter() {
        for seed in 0..20 {
            let prog = generate(seed, GenConfig { segments: 6, call_depth: 3 });
            let mut it = blackjack_isa::Interp::new(&prog);
            it.run(1_000_000).expect("interprets cleanly");
            assert!(it.halted(), "seed {seed} must halt");
        }
    }
}
