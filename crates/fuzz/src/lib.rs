//! Differential fuzzing of the BlackJack out-of-order SMT core against
//! the golden BJ-ISA interpreter.
//!
//! The crate closes the loop the hand-written differential tests can't:
//! it *generates* programs the test authors never thought of, runs each
//! one through every redundancy mode, and compares the committed
//! instruction stream — not just final state — against the interpreter.
//! Three layers:
//!
//! * [`gen`] — a deterministic random program generator constrained to
//!   lint-clean programs (every generated case passes
//!   `blackjack_analysis::lint_program` by construction), so a fuzz
//!   failure is always a simulator bug, never a degenerate input.
//! * [`diff`] — the lockstep differential driver: commit-log replay
//!   against the interpreter plus final register-file and memory
//!   equivalence, in all four [`blackjack_sim::Mode`]s.
//! * [`oracle`] — fault-soundness checks: fault-free runs must raise
//!   zero detections, and injected hard faults at sites where
//!   [`blackjack_analysis::SiteAnalysis`] guarantees detection must be
//!   detected or provably masked (memory identical to golden).
//!
//! Failures are shrunk by [`minimize`] (delta debugging with NOP
//! replacement, so PCs and branch offsets stay valid) and persisted as
//! replayable [`corpus`] cases under `tests/corpus/`.

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod minimize;
pub mod oracle;

pub use corpus::{Case, CaseKind};
pub use diff::{check_fault_free, DiffFailure, DiffFailureKind, DiffStats};
pub use gen::{generate, GenConfig};
pub use minimize::minimize;
pub use oracle::{
    check_fault, check_fault_universe, classify_sites, classify_sites_ecc, run_taxonomy,
    FaultVerdict, SiteClass, Soundness,
};
