//! Delta-debugging case minimization.
//!
//! Instructions are never *deleted* — deletion would shift every PC and
//! invalidate every branch offset. Instead, candidates are replaced
//! with `nop` (via [`Program::with_text`]), which preserves the layout
//! exactly; the pipeline executes the NOP like any other `IntAlu` uop.
//! `halt` words are protected so every mutant still terminates (or
//! times out, which the oracle classifies rather than crashes on).
//!
//! The algorithm is classic ddmin over the candidate index set: try
//! removing chunks at increasing granularity, restart whenever a
//! smaller failing case is found, and finish with a one-at-a-time
//! sweep. Deterministic: no randomness, candidates always visited in
//! ascending index order.

use blackjack_isa::{decode, encode, Inst, Program};

/// Shrinks `prog` to a (locally) minimal program that still fails
/// `oracle` (`true` = still fails). Returns the shrunk program; if the
/// original does not fail the oracle it is returned unchanged.
pub fn minimize(prog: &Program, oracle: impl Fn(&Program) -> bool) -> Program {
    if !oracle(prog) {
        return prog.clone();
    }
    let nop = encode(&Inst::Nop).expect("nop encodes");
    let mut text: Vec<u32> = prog.text().to_vec();

    // Candidate indices: everything that is not already a NOP and not a
    // halt (removing halt would strip the termination guarantee).
    let is_candidate = |w: u32| w != nop && !matches!(decode(w), Ok(Inst::Halt));
    let mut candidates: Vec<usize> =
        (0..text.len()).filter(|&i| is_candidate(text[i])).collect();

    let still_fails = |text: &[u32]| oracle(&prog.with_text(text.to_vec()));

    // ddmin over the candidate set.
    let mut n = 2usize;
    while candidates.len() >= 2 {
        let chunk = candidates.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < candidates.len() {
            let end = (start + chunk).min(candidates.len());
            // Complement: NOP out candidates[start..end], keep the rest.
            let mut trial = text.clone();
            for &i in &candidates[start..end] {
                trial[i] = nop;
            }
            if still_fails(&trial) {
                text = trial;
                candidates.drain(start..end);
                reduced = true;
                // Stay at the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if reduced {
            n = 2.max(n.saturating_sub(1));
        } else if n >= candidates.len() {
            break;
        } else {
            n = (n * 2).min(candidates.len());
        }
    }

    // Final one-at-a-time sweep (ddmin can leave single removable
    // instructions behind when chunks interleave).
    let mut i = 0;
    while i < candidates.len() {
        let mut trial = text.clone();
        trial[candidates[i]] = nop;
        if still_fails(&trial) {
            text = trial;
            candidates.remove(i);
        } else {
            i += 1;
        }
    }

    prog.with_text(text)
}

/// Counts the non-NOP, non-halt instructions in a program — the
/// minimizer's size metric.
pub fn live_instructions(prog: &Program) -> usize {
    prog.text()
        .iter()
        .filter(|&&w| !matches!(decode(w), Ok(Inst::Nop) | Ok(Inst::Halt)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackjack_isa::asm::assemble;

    /// The satellite self-test: a synthetic oracle ("the program still
    /// contains an `add`") must shrink a many-instruction program to a
    /// single-instruction witness, deterministically.
    #[test]
    fn shrinks_to_single_add_witness() {
        let prog = assemble(
            ".text
                li   x5, 1
                li   x6, 2
                add  x7, x5, x6
                sub  x8, x7, x5
                mul  x9, x8, x8
                add  x10, x9, x9
                xor  x11, x10, x9
                sd   x11, 0(x2)
                halt
            ",
        )
        .unwrap();
        let contains_add = |p: &Program| {
            p.decode_all()
                .unwrap()
                .iter()
                .any(|i| matches!(i, Inst::Alu { op: blackjack_isa::AluOp::Add, .. }))
        };
        let min1 = minimize(&prog, contains_add);
        assert_eq!(live_instructions(&min1), 1, "exactly one witness survives");
        assert!(contains_add(&min1), "the witness is an add");
        // Layout is untouched: same length, same PCs.
        assert_eq!(min1.len(), prog.len());
        // Deterministic: a second run produces the identical program.
        let min2 = minimize(&prog, contains_add);
        assert_eq!(min1.text(), min2.text());
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let prog = assemble(".text\n li x1, 1\n halt\n").unwrap();
        let min = minimize(&prog, |_| false);
        assert_eq!(min.text(), prog.text());
    }

    #[test]
    fn halt_is_never_removed() {
        let prog = assemble(".text\n li x1, 1\n li x2, 2\n halt\n").unwrap();
        let min = minimize(&prog, |_| true); // everything "fails"
        let insts = min.decode_all().unwrap();
        assert!(matches!(insts.last(), Some(Inst::Halt)));
        assert_eq!(live_instructions(&min), 0);
    }
}
