//! `bj-fuzz` — differential fuzzing of the OOO SMT core against the
//! golden interpreter.
//!
//! ```text
//! bj-fuzz [options]
//!
//! options:
//!   --seed S          master seed, decimal or 0x-hex (default: 0xB1AC)
//!   --iters N         iterations (default: 200)
//!   --out DIR         where minimized failure cases are written
//!                     (default: fuzz-failures)
//!   --mine-corpus DIR additionally keep the 10 most microarchitecturally
//!                     interesting cases (deepest IQ/DTQ occupancy,
//!                     largest slack excursion) as .bjcase files
//!   --quiet           print only the summary
//! ```
//!
//! Environment: `BJ_FUZZ_SEED` and `BJ_FUZZ_ITERS` provide defaults for
//! `--seed`/`--iters` (flags win); `BJ_CALL_DEPTH` sets the generator's
//! function-nesting depth (default 2: `main` plus one helper, `1`
//! disables calls); `BJ_FAULT_KINDS` picks the temporal fault models
//! the soundness sample sweeps (default `hard`); `BJ_ECC` replays the
//! sample with the LVQ SEC-DED layer on, which promotes the load-value
//! escape sites to guaranteed; invalid values exit with status 2.
//!
//! Each iteration generates a lint-clean program, checks it
//! differentially against the interpreter in all four modes, and
//! injects a sample of faults — core sites every iteration plus one
//! rotating uncore site (cache data/tag, store buffer, DTQ/LVQ payload
//! RAM), across every configured temporal kind — whose outcome is
//! judged against the static site classification. Output is fully
//! deterministic for a given seed — no timestamps, no wall-clock. Exit
//! status: 0 when every check passed, 1 when any failure was found
//! (failures are minimized and saved for replay), 2 on usage errors.

use std::path::PathBuf;
use std::process::exit;

use blackjack::envcfg;
use blackjack_analysis::SiteAnalysis;
use blackjack_faults::{FaultKind, FaultSite, HardFault};
use blackjack_fuzz::diff::MAX_STEPS;
use blackjack_fuzz::gen::{generate, GenConfig};
use blackjack_fuzz::minimize::{live_instructions, minimize};
use blackjack_fuzz::oracle::{check_fault_universe, classify_sites_ecc, FaultVerdict, SiteClass};
use blackjack_fuzz::{check_fault_free, Case, CaseKind};
use blackjack_isa::{Interp, Program};
use blackjack_rng::Rng;
use blackjack_sim::{Core, CoreConfig, FuCounts, Mode};

fn usage() -> ! {
    eprintln!("usage: bj-fuzz [--seed S] [--iters N] [--out DIR] [--mine-corpus DIR] [--quiet]");
    exit(2);
}

struct Tally {
    detected: u64,
    watchdog: u64,
    masked: u64,
    escaped: u64,
}

fn main() {
    let mut seed: u64 = envcfg::seed_from_env("BJ_FUZZ_SEED")
        .unwrap_or_else(|e| envcfg::exit_invalid(&e))
        .unwrap_or(0xB1AC);
    let mut iters: u64 = envcfg::positive_from_env("BJ_FUZZ_ITERS")
        .unwrap_or_else(|e| envcfg::exit_invalid(&e))
        .unwrap_or(200);
    let call_depth: usize = envcfg::call_depth_from_env()
        .unwrap_or_else(|e| envcfg::exit_invalid(&e));
    let kinds: Vec<FaultKind> =
        envcfg::fault_kinds_from_env().unwrap_or_else(|e| envcfg::exit_invalid(&e));
    let ecc: bool = envcfg::ecc_from_env().unwrap_or_else(|e| envcfg::exit_invalid(&e));
    let mut out_dir = PathBuf::from("fuzz-failures");
    let mut mine: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = envcfg::parse_seed("--seed", &v).unwrap_or_else(|_| {
                    eprintln!("bad --seed `{v}`");
                    usage()
                });
            }
            "--iters" => {
                iters = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--mine-corpus" => mine = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option `{other}`");
                usage()
            }
        }
    }

    let mut rng = Rng::seed_from_u64(seed);
    let fu = FuCounts::default();
    let mut failures: u64 = 0;
    let mut diff_runs: u64 = 0;
    let mut fault_runs: u64 = 0;
    let mut pruned_clean: u64 = 0;
    let mut guaranteed = Tally { detected: 0, watchdog: 0, masked: 0, escaped: 0 };
    let mut best_effort = Tally { detected: 0, watchdog: 0, masked: 0, escaped: 0 };
    // (score, iteration, seed, segments) of the most interesting cases.
    let mut interesting: Vec<(u64, u64, u64, usize)> = Vec::new();

    for iter in 0..iters {
        let sub_seed = rng.next_u64();
        let segments = rng.random_range(4usize..=16);
        let prog = generate(sub_seed, GenConfig { segments, call_depth });

        diff_runs += 1;
        if let Err(fail) = check_fault_free(&prog) {
            failures += 1;
            println!("iter {iter}: DIFFERENTIAL FAILURE seed={sub_seed:#x} segments={segments}");
            println!("  {fail}");
            let kind = fail.kind;
            let shrunk = minimize(&prog, |p| {
                check_fault_free(p).err().is_some_and(|e| e.kind == kind)
            });
            println!(
                "  minimized {} -> {} live instructions",
                live_instructions(&prog),
                live_instructions(&shrunk)
            );
            let case = Case::new(
                format!("diff-{sub_seed:#x}"),
                CaseKind::Failure,
                Some(sub_seed),
                shrunk,
                None,
            );
            match case.save(&out_dir) {
                Ok(p) => println!("  saved {}", p.display()),
                Err(e) => eprintln!("  could not save case: {e}"),
            }
            continue; // fault soundness on a diverging program is noise
        }

        // Fault-soundness sample: one frontend way, one backend way, one
        // payload entry, and one rotating uncore site per iteration, with
        // fault bits drawn from the corrupted structure's width. Every
        // site is replayed under each configured temporal kind.
        let analysis = match SiteAnalysis::analyze(&prog, &fu) {
            Ok(a) => a,
            Err(e) => {
                // Generated programs always build a CFG; treat anything
                // else as a generator bug worth failing loudly on.
                failures += 1;
                println!("iter {iter}: CFG FAILURE seed={sub_seed:#x}: {e}");
                continue;
            }
        };
        let golden = {
            let mut it = Interp::new(&prog);
            let _ = it.run(MAX_STEPS);
            it
        };
        let uncore = match iter % 5 {
            0 => (FaultSite::CacheData { index: rng.random_range(0usize..256) },
                  rng.random_range(0u8..64)),
            1 => (FaultSite::CacheTag { index: rng.random_range(0usize..256) },
                  rng.random_range(0u8..64)),
            2 => (FaultSite::StoreBuffer { entry: rng.random_range(0usize..64) },
                  rng.random_range(0u8..64)),
            3 => (FaultSite::DtqPayload { entry: rng.random_range(0usize..1024) },
                  rng.random_range(0u8..32)),
            _ => (FaultSite::LvqPayload { entry: rng.random_range(0usize..128) },
                  rng.random_range(0u8..64)),
        };
        let sites = [
            (FaultSite::Frontend { way: rng.random_range(0usize..4) },
             rng.random_range(0u8..32)),
            (FaultSite::Backend { way: rng.random_range(0usize..fu.total()) },
             rng.random_range(0u8..64)),
            (FaultSite::PayloadRam { entry: rng.random_range(0usize..64) },
             rng.random_range(0u8..32)),
            uncore,
        ];
        for (site, bit) in sites {
            let fault = HardFault::stuck_bit(site, bit);
            // Transient and intermittent plans draw a fresh arm cycle per
            // site so the sample walks the program's whole timeline over
            // the course of a campaign; hard faults stay armed from 0.
            for &kind in &kinds {
                let arm = match kind {
                    FaultKind::Hard => 0,
                    _ => rng.random_range(0u64..600),
                };
                fault_runs += 1;
                match check_fault_universe(&prog, &analysis, fault, kind, arm, ecc, golden.mem())
                {
                    Ok(verdict) => {
                        let tally = match classify_sites_ecc(&analysis, site, ecc) {
                            SiteClass::Pruned => {
                                pruned_clean += 1;
                                continue;
                            }
                            SiteClass::Guaranteed => &mut guaranteed,
                            SiteClass::BestEffort => &mut best_effort,
                        };
                        match verdict {
                            FaultVerdict::Detected => tally.detected += 1,
                            FaultVerdict::Watchdog => tally.watchdog += 1,
                            FaultVerdict::Masked => tally.masked += 1,
                            FaultVerdict::Escaped => tally.escaped += 1,
                        }
                    }
                    Err(unsound) => {
                        failures += 1;
                        println!("iter {iter}: FAULT-SOUNDNESS FAILURE seed={sub_seed:#x}");
                        println!("  {unsound}");
                        let shrunk =
                            minimize(&prog, |p| fault_still_unsound(p, fault, kind, arm, ecc, &fu));
                        println!(
                            "  minimized {} -> {} live instructions",
                            live_instructions(&prog),
                            live_instructions(&shrunk)
                        );
                        let mut case = Case::new(
                            format!("fault-{sub_seed:#x}-{bit}"),
                            CaseKind::Failure,
                            Some(sub_seed),
                            shrunk,
                            Some(fault),
                        );
                        case.temporal = kind;
                        case.arm = arm;
                        case.ecc = ecc;
                        match case.save(&out_dir) {
                            Ok(p) => println!("  saved {}", p.display()),
                            Err(e) => eprintln!("  could not save case: {e}"),
                        }
                    }
                }
            }
        }

        // Corpus mining: score by peak queue occupancy and slack excursion.
        if mine.is_some() {
            let mut core =
                Core::new(CoreConfig::with_mode(Mode::BlackJack), &prog, Default::default());
            core.enable_trace();
            let _ = core.run(blackjack_fuzz::diff::MAX_CYCLES);
            if let Some(state) = core.take_trace() {
                let score = state.occ_iq.percentile(100)
                    + state.occ_dtq.percentile(100)
                    + state.slack.percentile(100);
                interesting.push((score, iter, sub_seed, segments));
            }
        }

        if !quiet && (iter + 1) % 50 == 0 {
            println!("... {} iterations, {failures} failures", iter + 1);
        }
    }

    if let Some(dir) = mine {
        interesting.sort_by(|a, b| b.cmp(a)); // highest score first, then latest
        for (rank, &(score, _iter, sub_seed, segments)) in interesting.iter().take(10).enumerate() {
            let prog = generate(sub_seed, GenConfig { segments, call_depth });
            let case = Case::new(
                format!("interesting-{:02}-{sub_seed:#x}", rank),
                CaseKind::Interesting,
                Some(sub_seed),
                prog,
                None,
            );
            match case.save(&dir) {
                Ok(p) => {
                    if !quiet {
                        println!("mined {} (score {score})", p.display());
                    }
                }
                Err(e) => eprintln!("could not save mined case: {e}"),
            }
        }
    }

    let kinds_label = kinds
        .iter()
        .map(|k| match k {
            FaultKind::Hard => "hard".to_string(),
            FaultKind::Transient => "transient".to_string(),
            FaultKind::Intermittent { period, on } => format!("intermittent:{period}:{on}"),
        })
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "bj-fuzz: seed={seed:#x} iters={iters} kinds={kinds_label} ecc={}",
        if ecc { "on" } else { "off" }
    );
    println!("  differential: {diff_runs} programs x 4 modes, {failures} failures");
    println!(
        "  faults: {fault_runs} injected; pruned-clean {pruned_clean}; guaranteed \
         [detected {} watchdog {} masked {} escaped {}]; best-effort \
         [detected {} watchdog {} masked {} escaped {}]",
        guaranteed.detected,
        guaranteed.watchdog,
        guaranteed.masked,
        guaranteed.escaped,
        best_effort.detected,
        best_effort.watchdog,
        best_effort.masked,
        best_effort.escaped,
    );
    if failures > 0 {
        println!("  FAILURES: {failures} (cases under {})", out_dir.display());
        exit(1);
    }
    println!("  all checks passed");
}

/// Minimizer oracle for fault-soundness failures: does `fault` under the
/// same temporal plan still violate its site contract on this mutant?
fn fault_still_unsound(
    p: &Program,
    fault: HardFault,
    kind: FaultKind,
    arm: u64,
    ecc: bool,
    fu: &FuCounts,
) -> bool {
    let mut it = Interp::new(p);
    let _ = it.run(MAX_STEPS);
    if !it.halted() {
        return false;
    }
    let Ok(analysis) = SiteAnalysis::analyze(p, fu) else {
        return false;
    };
    check_fault_universe(p, &analysis, fault, kind, arm, ecc, it.mem()).is_err()
}
