//! Lockstep differential driver: the OOO core versus the golden
//! interpreter, in every redundancy mode.
//!
//! The comparison surface is deliberately wider than the hand-written
//! differential tests': besides final register-file and memory
//! equivalence, the core's *commit log* is replayed against the
//! interpreter instruction by instruction — PC, next PC, destination
//! value, load address/value, and store address/size/data must all
//! agree at every committed instruction, in program order. A divergence
//! therefore names the exact sequence number where the pipeline first
//! went wrong, which is what makes minimized cases actionable.
//!
//! Every failure path returns a [`DiffFailure`] instead of panicking, so
//! the driver doubles as the minimizer's oracle: delta-debugged mutants
//! that hang or diverge *differently* are classified, not crashed on.

use blackjack_faults::FaultPlan;
use blackjack_isa::exec::effective_addr;
use blackjack_isa::{decode, Inst, Interp, Program};
use blackjack_sim::{Core, CoreConfig, MemEffect, Mode};

/// Interpreter step budget per run.
pub const MAX_STEPS: u64 = 1_000_000;
/// Core cycle budget per run (the internal watchdog fires far earlier
/// on deadlock).
pub const MAX_CYCLES: u64 = 20_000_000;

/// What went wrong, without the details — the minimizer matches on this
/// to ensure a shrunk case still fails *the same way*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffFailureKind {
    /// The interpreter itself did not halt within [`MAX_STEPS`] (only
    /// reachable on minimizer mutants; generated programs always halt).
    InterpTimeout,
    /// The core did not complete: cycle limit or watchdog deadlock.
    CoreStuck,
    /// A redundancy check fired on a fault-free run — a false positive.
    FalseDetection,
    /// The commit log diverged from the interpreter's execution.
    CommitDivergence,
    /// Final architectural register state differs.
    RegisterMismatch,
    /// Final memory image differs.
    MemoryMismatch,
    /// Commit counts differ from the interpreter's instruction count,
    /// or the two redundant threads did not commit in lockstep.
    CommitCount,
}

/// A differential failure: which mode, which kind, and a human-readable
/// account of the first divergence.
#[derive(Debug, Clone)]
pub struct DiffFailure {
    /// The mode that diverged.
    pub mode: Mode,
    /// The failure class.
    pub kind: DiffFailureKind,
    /// Details of the first divergence.
    pub detail: String,
}

impl std::fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} mode] {:?}: {}", self.mode, self.kind, self.detail)
    }
}

/// Aggregate statistics from one clean differential run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffStats {
    /// Instructions the interpreter executed.
    pub icount: u64,
    /// Core cycles, summed over all modes.
    pub cycles: u64,
}

/// Runs `prog` through the interpreter and through the core in all four
/// modes, comparing the committed instruction stream and the final
/// architectural state. Fault-free: any detection is a failure.
///
/// # Errors
///
/// Returns the first [`DiffFailure`] encountered, in `Mode::ALL` order.
pub fn check_fault_free(prog: &Program) -> Result<DiffStats, DiffFailure> {
    // Golden run first; a non-halting program is reported against the
    // first mode for determinism.
    let mut golden = Interp::new(prog);
    let _ = golden.run(MAX_STEPS);
    if !golden.halted() {
        return Err(DiffFailure {
            mode: Mode::ALL[0],
            kind: DiffFailureKind::InterpTimeout,
            detail: format!("interpreter still running after {MAX_STEPS} steps"),
        });
    }

    let mut stats = DiffStats { icount: golden.icount(), cycles: 0 };
    for mode in Mode::ALL {
        let mut core = Core::new(CoreConfig::with_mode(mode), prog, FaultPlan::new());
        core.enable_commit_log();
        let outcome = core.run(MAX_CYCLES);
        let fail = |kind, detail| Err(DiffFailure { mode, kind, detail });
        match outcome {
            blackjack_sim::RunOutcome::Completed => {}
            blackjack_sim::RunOutcome::Detected(ev) => {
                return fail(DiffFailureKind::FalseDetection, format!("{ev}"));
            }
            blackjack_sim::RunOutcome::CycleLimit => {
                return fail(
                    DiffFailureKind::CoreStuck,
                    format!(
                        "no completion after {} cycles (deadlocked: {})",
                        core.stats().cycles,
                        core.stats().deadlocked
                    ),
                );
            }
            // The differential surface never arms the early-exit checks
            // (no quiesce cycle or stall window is configured above).
            blackjack_sim::RunOutcome::EarlyExit(r) => {
                unreachable!("early exit ({r}) without early-exit config")
            }
        }

        let log = core.take_commit_log().expect("commit log was enabled");
        if let Err(e) = replay_against_interp(prog, &log) {
            return fail(DiffFailureKind::CommitDivergence, e);
        }

        for r in 0..32 {
            if core.arch_reg(r) != golden.reg(r) {
                return fail(
                    DiffFailureKind::RegisterMismatch,
                    format!("x{r}: core {:#x}, golden {:#x}", core.arch_reg(r), golden.reg(r)),
                );
            }
            if core.arch_freg_bits(r) != golden.freg_bits(r) {
                return fail(
                    DiffFailureKind::RegisterMismatch,
                    format!(
                        "f{r}: core {:#x}, golden {:#x}",
                        core.arch_freg_bits(r),
                        golden.freg_bits(r)
                    ),
                );
            }
        }
        if let Some(addr) = core.mem().first_difference(golden.mem()) {
            return fail(
                DiffFailureKind::MemoryMismatch,
                format!(
                    "at {addr:#x}: core {:#x}, golden {:#x}",
                    core.mem().read_u64(addr & !7),
                    golden.mem().read_u64(addr & !7)
                ),
            );
        }

        let s = core.stats();
        if s.committed[0] != golden.icount() {
            return fail(
                DiffFailureKind::CommitCount,
                format!("core committed {}, interpreter executed {}", s.committed[0], golden.icount()),
            );
        }
        if mode.is_redundant() && s.committed[0] != s.committed[1] {
            return fail(
                DiffFailureKind::CommitCount,
                format!("threads out of lockstep: {} vs {}", s.committed[0], s.committed[1]),
            );
        }
        stats.cycles += s.cycles;
    }
    Ok(stats)
}

/// Replays a commit log against a fresh interpreter, checking PC, next
/// PC, destination writes, and memory effects at every sequence number.
fn replay_against_interp(
    prog: &Program,
    log: &[blackjack_sim::CommitRecord],
) -> Result<(), String> {
    let mut it = Interp::new(prog);
    for (i, rec) in log.iter().enumerate() {
        if rec.seq != i as u64 {
            return Err(format!("sequence gap: record {i} has seq {}", rec.seq));
        }
        if rec.pc != it.pc() {
            return Err(format!("seq {i}: committed pc {:#x}, golden pc {:#x}", rec.pc, it.pc()));
        }
        // Load addresses are recomputed from the interpreter's pre-step
        // register state — the text segment is never written, so the
        // static image is authoritative for the instruction itself.
        let expect_load_addr = prog
            .fetch(rec.pc)
            .and_then(|w| decode(w).ok())
            .and_then(|inst| match inst {
                Inst::Load { rs1, .. } | Inst::FLoad { rs1, .. } => {
                    Some(effective_addr(&inst, it.reg(rs1.index() as usize)))
                }
                _ => None,
            });
        if it.step().is_err() {
            return Err(format!("seq {i}: golden faulted at pc {:#x}", rec.pc));
        }
        if rec.next_pc != it.pc() {
            return Err(format!(
                "seq {i}: committed next_pc {:#x}, golden {:#x}",
                rec.next_pc,
                it.pc()
            ));
        }
        if let Some((log_reg, v)) = rec.dst {
            let idx = log_reg.index() as usize;
            let want = if log_reg.is_fp() { it.freg_bits(idx - 32) } else { it.reg(idx) };
            if v != want {
                return Err(format!(
                    "seq {i}: dst {log_reg:?} committed {v:#x}, golden {want:#x}"
                ));
            }
        }
        match rec.mem {
            Some(MemEffect::Store { addr, bytes, data }) => {
                let got = it.mem().read_sized(addr, bytes);
                if data != got {
                    return Err(format!(
                        "seq {i}: store {bytes}B @ {addr:#x} committed {data:#x}, golden {got:#x}"
                    ));
                }
            }
            Some(MemEffect::Load { addr, .. }) => {
                if let Some(want) = expect_load_addr {
                    if addr != want {
                        return Err(format!(
                            "seq {i}: load address {addr:#x}, golden {want:#x}"
                        ));
                    }
                }
            }
            None => {}
        }
    }
    if !it.halted() {
        return Err(format!(
            "log ends after {} records but the golden run has not halted",
            log.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use blackjack_isa::asm::assemble;

    #[test]
    fn generated_programs_pass_all_modes() {
        for seed in 0..8 {
            let prog = generate(seed, GenConfig::default());
            check_fault_free(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn non_halting_program_reports_timeout_not_panic() {
        let prog = assemble(".text\nloop:\n j loop\n halt\n").unwrap();
        let err = check_fault_free(&prog).unwrap_err();
        assert_eq!(err.kind, DiffFailureKind::InterpTimeout);
    }
}
