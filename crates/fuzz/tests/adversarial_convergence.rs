//! The adversarial convergence case: a fault that *activates* early
//! (corrupting a value that turns out to be architecturally dead), goes
//! quiet for thousands of cycles, and decides its real verdict only
//! when the site is re-exercised late in the run.
//!
//! This is the case the early-exit layer's golden-lockstep seal (M2)
//! must refuse: past the quiesce cycle the machine *looks* converged —
//! no activations for a long stretch, architectural state identical to
//! the fault-free run — but the nonzero activation count means the run
//! has already diverged microarchitecturally once, and the reference
//! exercise schedule no longer bounds its future. A "quiet means
//! converged" heuristic would seal Benign here and miss the detection.
//! The implemented seal requires `activations == 0`, so it must ride
//! the run to its true verdict.
//!
//! The program is checked in as `tests/corpus/adversarial-convergence.
//! bjcase` (regenerate with `BJ_BLESS=1 cargo test -p blackjack-fuzz
//! --test adversarial_convergence`), so the standard corpus replay
//! (differential surface + fault-soundness oracle) covers it too.

use std::path::PathBuf;

use blackjack_faults::{FaultPlan, FaultSite, HardFault};
use blackjack_fuzz::{Case, CaseKind};
use blackjack_isa::asm::assemble_named;
use blackjack_isa::FuType;
use blackjack_sim::{
    Core, CoreConfig, EarlyExitReason, FuCounts, Mode, RunOutcome,
};

const MAX_CYCLES: u64 = 1_000_000;

/// The hypothetical seal point: mid-quiet-phase, after the phase-1
/// activation and well before the phase-3 verdict (both margins are
/// asserted, not assumed).
const QUIESCE: u64 = 1_200;

/// Scratch memory above the data segment (same convention as the
/// workload kernels).
const HEAP: u64 = 0x40_0000;

fn case_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/corpus/adversarial-convergence.bjcase")
}

/// The injected fault: stuck-at-1 on bit 4 of integer-multiplier
/// instance 0's result path. `3 * 5 = 15` has bit 4 clear, so every
/// pass of that product through the faulty way is an activation.
fn mul_fault() -> HardFault {
    let way = FuCounts::default().global_way(FuType::IntMul, 0);
    HardFault::stuck_bit(FaultSite::Backend { way }, 4)
}

fn adversarial_case() -> Case {
    // Phase 1 corrupts a product and immediately kills it: the
    // activation is counted but the run reconverges with the fault-free
    // run. Phase 2 never touches a multiplier, so the fault stays
    // silent across the whole loop. Phase 3 re-exercises the site and
    // commits the product to memory, deciding the verdict.
    let src = format!(
        r#"
        .text
            # Phase 1 (early activation): the corrupted product is
            # overwritten before it can reach memory or control flow.
            li   x5, 3
            li   x6, 5
            mul  x7, x5, x6        # 15: bit 4 clear, fault activates
            li   x7, 0             # corruption is dead on arrival
            # Phase 2 (quiet): ALU-only loop, zero multiplier traffic.
            li   x10, 3000
            li   x11, 0
        loop:
            addi x11, x11, 1
            blt  x11, x10, loop
            # Phase 3 (late verdict): the same product, committed.
            mul  x12, x5, x6
            li   x13, {HEAP}
            sd   x12, 0(x13)
            halt
        "#
    );
    let program = assemble_named(&src, "adversarial-convergence")
        .expect("adversarial program assembles");
    Case::new(
        "adversarial-convergence".into(),
        CaseKind::Interesting,
        None,
        program,
        Some(mul_fault()),
    )
}

#[test]
fn checked_in_case_matches_source() {
    let want = adversarial_case().to_text();
    let path = case_path();
    if std::env::var_os("BJ_BLESS").is_some() {
        std::fs::write(&path, &want).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    let got = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{}: {e} (regenerate with BJ_BLESS=1)", path.display())
    });
    assert_eq!(got, want, "checked-in case is stale; regenerate with BJ_BLESS=1");
}

#[test]
fn activation_blocks_the_convergence_seal() {
    let case = adversarial_case();
    let cfg = CoreConfig::with_mode(Mode::BlackJack);
    let fault = case.fault.expect("case carries a fault");

    // Full run: the verdict lands late, long after the quiesce point.
    let mut full = Core::new(cfg.clone(), &case.program, FaultPlan::single(fault));
    let full_out = full.run(MAX_CYCLES);
    assert!(
        matches!(full_out, RunOutcome::Detected(_)),
        "adversarial case must end in a detection, got {full_out:?}"
    );
    assert!(
        full.cycle() > 2 * QUIESCE,
        "verdict at cycle {} is not meaningfully past the quiesce point",
        full.cycle()
    );

    // The activation lands before the quiesce point: by cycle QUIESCE
    // the fault has already fired, yet nothing architectural happened.
    let mut probe = Core::new(cfg.clone(), &case.program, FaultPlan::single(fault));
    probe.run(QUIESCE);
    assert!(
        probe.plan().activations() > 0,
        "fault must activate before the quiesce point for the case to be adversarial"
    );

    // M2 armed mid-quiet: the nonzero activation count blocks the seal,
    // and the run is indistinguishable from the full one.
    let mut armed = Core::new(cfg, &case.program, FaultPlan::single(fault));
    armed.set_quiesce_cycle(Some(QUIESCE));
    let armed_out = armed.run(MAX_CYCLES);
    assert_eq!(
        armed_out, full_out,
        "an armed quiesce check must not change the verdict of an activated run"
    );
    assert_eq!(armed.cycle(), full.cycle());
}

#[test]
fn quiesce_seals_only_inactive_sites() {
    // The positive side of the same contract: on a site the program
    // never exercises (an FP divider here — the program is integer-
    // only), the seal fires at the quiesce point and the sealed verdict
    // (Benign) matches the full run's.
    let case = adversarial_case();
    let cfg = CoreConfig::with_mode(Mode::BlackJack);
    let way = FuCounts::default().global_way(FuType::FpDiv, 0);
    let idle = HardFault::stuck_bit(FaultSite::Backend { way }, 4);

    let mut golden = Core::new(cfg.clone(), &case.program, FaultPlan::new());
    assert_eq!(golden.run(MAX_CYCLES), RunOutcome::Completed);

    let mut full = Core::new(cfg.clone(), &case.program, FaultPlan::single(idle));
    assert_eq!(full.run(MAX_CYCLES), RunOutcome::Completed);
    assert_eq!(full.plan().activations(), 0, "the FP divider must never be exercised");
    assert!(
        full.mem().first_difference(golden.mem()).is_none(),
        "the full run must be Benign for the seal to be checkable against it"
    );

    let mut armed = Core::new(cfg, &case.program, FaultPlan::single(idle));
    armed.set_quiesce_cycle(Some(QUIESCE));
    assert_eq!(armed.run(MAX_CYCLES), RunOutcome::EarlyExit(EarlyExitReason::Converged));
    assert!(armed.cycle() >= QUIESCE, "the seal cannot fire before the quiesce point");
    assert!(
        armed.cycle() < full.cycle(),
        "the seal must actually save cycles over the full run"
    );
}
