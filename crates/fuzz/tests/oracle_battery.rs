//! Soundness battery over the full fault universe: every
//! (site-class, fault-kind) cell is exercised with the ECC layer off and
//! on, and every injection must satisfy its site contract — in
//! particular, zero `Escaped` verdicts on `Guaranteed` sites. This is
//! the deterministic, checked-in counterpart of the `bj-fuzz` sampling
//! loop: ≥200 injections across three generated programs, all eight
//! fault-site families, and all three temporal models.

use blackjack_analysis::SiteAnalysis;
use blackjack_faults::{FaultKind, FaultSite, HardFault};
use blackjack_fuzz::gen::{generate, GenConfig};
use blackjack_fuzz::oracle::{
    check_fault_universe, classify_sites_ecc, golden_memory, FaultVerdict, SiteClass,
};
use blackjack_sim::{Core, CoreConfig, FuCounts, Mode};

/// The site sample: every `FaultSite` family, physical indices chosen so
/// the circular-RAM keying (`seq % capacity`) and the L1D set mapping
/// both land on exercised slots for small generated programs.
fn sites() -> Vec<FaultSite> {
    vec![
        FaultSite::Frontend { way: 0 },
        FaultSite::Frontend { way: 3 },
        FaultSite::Backend { way: 0 },
        FaultSite::Backend { way: 7 },
        FaultSite::Backend { way: 15 },
        FaultSite::PayloadRam { entry: 0 },
        FaultSite::PayloadRam { entry: 5 },
        FaultSite::CacheData { index: 0 },
        FaultSite::CacheTag { index: 0 },
        FaultSite::StoreBuffer { entry: 0 },
        FaultSite::DtqPayload { entry: 0 },
        FaultSite::LvqPayload { entry: 0 },
        FaultSite::LvqPayload { entry: 1 },
    ]
}

/// A fault bit inside the corrupted structure's width.
fn bit_for(site: FaultSite, salt: u8) -> u8 {
    let width = match site {
        // Instruction words and payload-RAM slots are 32 bits wide.
        FaultSite::Frontend { .. } | FaultSite::PayloadRam { .. } | FaultSite::DtqPayload { .. } => {
            32
        }
        _ => 64,
    };
    (salt * 13 + 3) % width
}

/// Fault-free BlackJack cycle count, used to place transient and
/// intermittent arm cycles inside the program's active window.
fn fault_free_cycles(prog: &blackjack_isa::Program) -> u64 {
    let mut core = Core::new(CoreConfig::with_mode(Mode::BlackJack), prog, Default::default());
    let _ = core.run(blackjack_fuzz::diff::MAX_CYCLES);
    core.stats().cycles
}

#[test]
fn fault_universe_battery_has_no_guaranteed_escapes() {
    let fu = FuCounts::default();
    let mut total = 0u64;
    let mut guaranteed_checked = 0u64;
    let mut best_effort_escapes = 0u64;

    for (seed, segments) in [(0xBA7u64, 4usize), (0xBA8, 5), (0xBA9, 6)] {
        let prog = generate(seed, GenConfig { segments, ..GenConfig::default() });
        let analysis = SiteAnalysis::analyze(&prog, &fu).expect("generated programs have a CFG");
        let golden = golden_memory(&prog);
        let cycles = fault_free_cycles(&prog);
        let kinds = [
            (FaultKind::Hard, 0),
            (FaultKind::Transient, cycles / 2),
            (FaultKind::Intermittent { period: 32, on: 4 }, cycles / 3),
        ];

        for (i, site) in sites().into_iter().enumerate() {
            let fault = HardFault::stuck_bit(site, bit_for(site, i as u8));
            for &(kind, arm) in &kinds {
                for ecc in [false, true] {
                    total += 1;
                    // check_fault_universe fails internally on any
                    // contract violation (guaranteed-site SDC, pruned-site
                    // deviation, uncontained wedge).
                    let verdict =
                        check_fault_universe(&prog, &analysis, fault, kind, arm, ecc, &golden)
                            .unwrap_or_else(|s| {
                                panic!("seed {seed:#x} {kind:?} ecc={ecc}: unsound: {s}")
                            });
                    match classify_sites_ecc(&analysis, site, ecc) {
                        SiteClass::Guaranteed => {
                            guaranteed_checked += 1;
                            assert_ne!(
                                verdict,
                                FaultVerdict::Escaped,
                                "guaranteed site {site:?} escaped under {kind:?} (ecc={ecc})"
                            );
                        }
                        SiteClass::BestEffort if verdict == FaultVerdict::Escaped => {
                            best_effort_escapes += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    assert!(total >= 200, "battery too small: {total} injections");
    assert!(
        guaranteed_checked >= 100,
        "guaranteed cells under-covered: {guaranteed_checked} of {total}"
    );
    // Escapes on best-effort sites are tolerated by the contract, but at
    // these exercised slots with ECC in the sweep they should stay rare;
    // a jump here means a promoted site regressed to its escape path.
    assert!(
        best_effort_escapes <= total / 10,
        "unexpected escape volume on best-effort sites: {best_effort_escapes} of {total}"
    );
}

#[test]
fn ecc_promotes_every_load_value_site_to_guaranteed() {
    let prog = generate(0xBA7, GenConfig { segments: 4, ..GenConfig::default() });
    let analysis = SiteAnalysis::analyze(&prog, &FuCounts::default()).unwrap();
    for site in [
        FaultSite::PayloadRam { entry: 0 },
        FaultSite::CacheData { index: 0 },
        FaultSite::LvqPayload { entry: 0 },
    ] {
        assert_eq!(
            classify_sites_ecc(&analysis, site, true),
            SiteClass::Guaranteed,
            "{site:?} must be guaranteed with ECC on"
        );
    }
    // And the LVQ payload RAM is guaranteed even without ECC: the
    // corruption strikes only the trailing thread's copy, which can
    // diverge-and-detect or match, never silently reach memory.
    assert_eq!(
        classify_sites_ecc(&analysis, FaultSite::LvqPayload { entry: 0 }, false),
        SiteClass::Guaranteed
    );
}
