//! Taxonomy goldens: three hand-written corpus cases that pin one
//! CE/DUE/SDC verdict each, exercising the fault-universe dimensions the
//! `.bjcase` format carries (`temporal`, `ecc`, `expect`):
//!
//! * `taxonomy-ce-lvq-corrected` — a single stuck bit in the LVQ payload
//!   RAM with the SEC-DED layer on: the trailing read is repaired in
//!   flight, the run completes with golden memory, and the correction
//!   counter makes it a CE.
//! * `taxonomy-due-intermittent-burst` — a duty-cycled (8-of-16) stuck
//!   bit on backend way 0 under an ALU loop: some burst lands on a live
//!   computation, the pair checks fire, DUE.
//! * `taxonomy-sdc-cache-data` — a stuck bit in the L1D data array (set
//!   0) with ECC off: the corrupt load value is captured into the LVQ,
//!   both threads agree on the wrong value, and the pair-matched store
//!   writes it to memory — the known escape, SDC.
//!
//! The cases are checked in under `tests/corpus/` (regenerate with
//! `BJ_BLESS=1 cargo test -p blackjack-fuzz --test taxonomy_goldens`),
//! so the standard corpus replay covers them too; here each one is
//! additionally replayed through `run_taxonomy` against its pinned
//! `expect` verdict.

use std::path::PathBuf;

use blackjack_faults::{FaultKind, FaultSite, HardFault, Taxonomy};
use blackjack_fuzz::oracle::{golden_memory, run_taxonomy};
use blackjack_fuzz::{Case, CaseKind};
use blackjack_isa::asm::assemble_named;

/// Scratch memory above the data segment (same convention as the
/// workload kernels); maps to L1D set 0 (0x40_0000 / 64 % 256 == 0).
const HEAP: u64 = 0x40_0000;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn stuck(site: FaultSite, bit: u8) -> HardFault {
    HardFault::stuck_bit(site, bit)
}

/// Store 5, load it back, store the loaded value — the value round-trips
/// through the LVQ, so a payload-RAM or data-array defect on its path
/// decides the verdict (bit 1 of 5 is clear, so stuck-at-1 is visible).
fn load_roundtrip_program(name: &str) -> blackjack_isa::Program {
    let src = format!(
        r#"
        .text
            li   x5, {HEAP}
            li   x6, 5
            sd   x6, 0(x5)
            ld   x7, 0(x5)
            sd   x7, 8(x5)
            halt
        "#
    );
    assemble_named(&src, name).expect("taxonomy program assembles")
}

/// An ALU loop long enough that an 8-of-16 duty-cycled burst is certain
/// to land on a live increment, followed by a store of the loop counter
/// so a corrupted copy must face the pair check.
fn alu_loop_program(name: &str) -> blackjack_isa::Program {
    let src = format!(
        r#"
        .text
            li   x10, 300
            li   x11, 0
        loop:
            addi x11, x11, 1
            blt  x11, x10, loop
            li   x13, {HEAP}
            sd   x11, 0(x13)
            halt
        "#
    );
    assemble_named(&src, name).expect("taxonomy program assembles")
}

fn taxonomy_cases() -> Vec<Case> {
    // The first load in each program is load_seq 0, so LVQ slot 0
    // (circular RAM: slot = seq % capacity) is the exercised entry.
    let mut ce = Case::new(
        "taxonomy-ce-lvq-corrected".into(),
        CaseKind::Interesting,
        None,
        load_roundtrip_program("taxonomy-ce-lvq-corrected"),
        Some(stuck(FaultSite::LvqPayload { entry: 0 }, 1)),
    );
    ce.ecc = true;
    ce.expect = Some(Taxonomy::Ce);

    let mut due = Case::new(
        "taxonomy-due-intermittent-burst".into(),
        CaseKind::Interesting,
        None,
        alu_loop_program("taxonomy-due-intermittent-burst"),
        Some(stuck(FaultSite::Backend { way: 0 }, 0)),
    );
    due.temporal = FaultKind::Intermittent { period: 16, on: 8 };
    due.expect = Some(Taxonomy::Due);

    let mut sdc = Case::new(
        "taxonomy-sdc-cache-data".into(),
        CaseKind::Interesting,
        None,
        load_roundtrip_program("taxonomy-sdc-cache-data"),
        Some(stuck(FaultSite::CacheData { index: 0 }, 1)),
    );
    sdc.expect = Some(Taxonomy::Sdc);

    vec![ce, due, sdc]
}

#[test]
fn checked_in_taxonomy_cases_match_sources() {
    for case in taxonomy_cases() {
        let want = case.to_text();
        let path = corpus_dir().join(format!("{}.bjcase", case.name));
        if std::env::var_os("BJ_BLESS").is_some() {
            std::fs::write(&path, &want).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
        let got = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: {e} (regenerate with BJ_BLESS=1)", path.display())
        });
        assert_eq!(got, want, "{}: stale; regenerate with BJ_BLESS=1", path.display());
    }
}

#[test]
fn taxonomy_goldens_replay_to_their_verdicts() {
    for case in taxonomy_cases() {
        let golden = golden_memory(&case.program);
        let plan = case.plan().expect("taxonomy cases carry a fault");
        let got = run_taxonomy(&case.program, plan, case.ecc, &golden);
        assert_eq!(
            Some(got),
            case.expect,
            "{}: replayed to {got:?}, pinned {:?}",
            case.name,
            case.expect
        );
    }
}

#[test]
fn sdc_case_is_downgraded_to_due_by_ecc() {
    // The SDC golden is exactly the escape the SEC-DED layer closes:
    // with ECC on, the trailing read is repaired (the check bits were
    // generated over the clean composed value before the data-array hook
    // struck), the *leading* copy stays corrupt, and the now-divergent
    // pair trips the store check — silent corruption becomes a
    // detection, SDC -> DUE. A CE needs the corruption confined to the
    // trailing copy (the LVQ-payload golden above).
    let cases = taxonomy_cases();
    let sdc = cases.iter().find(|c| c.name == "taxonomy-sdc-cache-data").unwrap();
    let golden = golden_memory(&sdc.program);
    let plan = sdc.plan().unwrap();
    assert_eq!(run_taxonomy(&sdc.program, plan.clone(), false, &golden), Taxonomy::Sdc);
    assert_eq!(run_taxonomy(&sdc.program, plan, true, &golden), Taxonomy::Due);
}
