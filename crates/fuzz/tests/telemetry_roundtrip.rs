//! Telemetry JSONL round-trip property: every line the emitters write
//! must survive `parse_line` → `emit_line` byte-identically. The trace
//! content comes from real traced runs of fuzz-generated programs, so
//! the property covers run, heatmap, flight-event (including the `null`
//! sentinels and boolean fields), detection, and meta lines.

use blackjack::telemetry::{emit_line, parse_line, TraceWriter};
use blackjack_faults::{FaultPlan, FaultSite, HardFault};
use blackjack_fuzz::gen::{generate, GenConfig};
use blackjack_sim::{Core, CoreConfig, Mode};

fn trace_one(path: &std::path::Path, seed: u64, fault: Option<HardFault>) {
    let prog = generate(seed, GenConfig { segments: 8, ..GenConfig::default() });
    let plan = fault.map_or_else(FaultPlan::new, FaultPlan::single);
    let mut core = Core::new(CoreConfig::with_mode(Mode::BlackJack), &prog, plan);
    core.enable_trace();
    let outcome = core.run(20_000_000);
    let mut w = TraceWriter::create(path, "fuzz-roundtrip").expect("create trace");
    let state = core.take_trace().expect("trace enabled");
    w.emit_run(&prog.name, core.stats(), Some(&state));
    w.emit_heatmap(&prog.name, &state.heat);
    w.emit_flight(&state.flight.events());
    if let blackjack_sim::RunOutcome::Detected(ev) = &outcome {
        w.emit_detection(ev);
    }
    w.flush().expect("flush");
}

fn assert_roundtrip(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("read trace");
    assert!(!text.is_empty(), "trace must not be empty");
    for (i, line) in text.lines().enumerate() {
        let fields = parse_line(line)
            .unwrap_or_else(|| panic!("line {} does not parse: {line}", i + 1));
        let back = emit_line(&fields);
        assert_eq!(back, line, "line {} does not round-trip", i + 1);
    }
}

#[test]
fn fault_free_traces_round_trip() {
    let dir = std::env::temp_dir().join("bj-fuzz-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for seed in [0u64, 11, 47] {
        let path = dir.join(format!("clean-{seed}.jsonl"));
        trace_one(&path, seed, None);
        assert_roundtrip(&path);
    }
}

#[test]
fn detection_traces_round_trip() {
    // A frontend stuck-at fault makes the run end in a detection, so the
    // `detection` line shape is exercised too.
    let dir = std::env::temp_dir().join("bj-fuzz-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("detected.jsonl");
    trace_one(&path, 5, Some(HardFault::stuck_bit(FaultSite::Frontend { way: 1 }, 7)));
    assert_roundtrip(&path);
}

#[test]
fn parser_rejects_garbage() {
    assert!(parse_line("").is_none());
    assert!(parse_line("not json").is_none());
    assert!(parse_line("[1,2,3]").is_none(), "top level must be an object");
    assert!(parse_line("{\"a\":1} trailing").is_none());
    assert!(parse_line("{\"a\":}").is_none());
}

#[test]
fn parser_preserves_raw_number_tokens() {
    // 1.50 and 1.5 are the same number but different tokens; raw
    // preservation is what makes the round-trip byte-exact.
    let line = r#"{"a":1.50,"b":null,"c":true,"d":[1,2],"e":{"f":"x\n"}}"#;
    let fields = parse_line(line).unwrap();
    assert_eq!(emit_line(&fields), line);
}
