//! Call-bearing corpus cases, pinned to their assembly sources.
//!
//! Three hand-written programs exercise the call/return surface the
//! generator and the interprocedural analysis meet on:
//!
//! * `call-leaf-chain` — two call sites into one leaf helper: the RAS
//!   pushes and pops with distinct return addresses every iteration.
//! * `call-ra-spill` — a three-deep chain whose middle function spills
//!   and reloads `ra` through a stack frame, the save/restore shape the
//!   return-address discipline proof verifies.
//! * `call-recursive-bounded` — a bounded self-recursive function. It
//!   executes fine (and must replay clean differentially), but the
//!   discipline proof must *reject* it: recursion breaks the acyclic
//!   frame argument, so its returns stay unresolved.
//!
//! The `.bjcase` files under `tests/corpus/` (repo root) are replayed
//! by the generic corpus tests; this file pins them to the sources
//! below so they cannot drift. Set `BJ_REGEN_CORPUS=1` to rewrite the
//! files from the sources.

use std::path::PathBuf;

use blackjack_analysis::{lint_program, Interproc, Resolution};
use blackjack_fuzz::{Case, CaseKind};
use blackjack_isa::asm::assemble_named;

const LEAF_CHAIN: &str = r#"
.text
    li   x20, 0x400000     # scratch base
    li   x21, 40           # iterations
    li   x22, 0
    li   x23, 7            # accumulator
loop:
    call mix
    sd   x23, 0(x20)
    call mix
    sd   x23, 8(x20)
    addi x22, x22, 1
    blt  x22, x21, loop
    halt

mix:                       # leaf: fold the index into the accumulator
    xor  x23, x23, x22
    sll  x15, x23, 3
    add  x23, x23, x15
    ret
"#;

const RA_SPILL: &str = r#"
.text
    li   x20, 0x400000     # scratch base
    li   x21, 24           # iterations
    li   x22, 0
    li   x23, 1            # accumulator
loop:
    call outer
    addi x22, x22, 1
    blt  x22, x21, loop
    sd   x23, 0(x20)
    halt

outer:                     # non-leaf: spills ra around the inner call
    addi sp, sp, -16
    sd   ra, 8(sp)
    add  x23, x23, x22
    call inner
    xor  x23, x23, x15
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret

inner:                     # leaf
    sll  x15, x23, 1
    add  x15, x15, x22
    ret
"#;

const RECURSIVE_BOUNDED: &str = r#"
.text
    li   x20, 0x400000     # scratch base
    li   x21, 6            # recursion depth
    li   x23, 0            # accumulator
    call rec
    sd   x23, 0(x20)
    halt

rec:                       # self-recursive, bounded by x21
    addi sp, sp, -16
    sd   ra, 8(sp)
    add  x23, x23, x21
    addi x21, x21, -1
    beqz x21, unwind
    call rec
unwind:
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret
"#;

const CASES: [(&str, &str); 3] = [
    ("call-leaf-chain", LEAF_CHAIN),
    ("call-ra-spill", RA_SPILL),
    ("call-recursive-bounded", RECURSIVE_BOUNDED),
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn case_for(name: &str, src: &str) -> Case {
    Case::new(
        name.to_string(),
        CaseKind::Interesting,
        None,
        assemble_named(src, name).unwrap_or_else(|e| panic!("{name}: {e}")),
        None,
    )
}

#[test]
fn call_corpus_files_match_their_sources() {
    for (name, src) in CASES {
        let case = case_for(name, src);
        let path = corpus_dir().join(format!("{name}.bjcase"));
        if std::env::var("BJ_REGEN_CORPUS").is_ok() {
            std::fs::write(&path, case.to_text())
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: {e} (set BJ_REGEN_CORPUS=1 to generate)", path.display())
        });
        assert_eq!(
            case.to_text(),
            on_disk,
            "{name}: corpus file does not match its source \
             (set BJ_REGEN_CORPUS=1 to regenerate)"
        );
    }
}

#[test]
fn disciplined_cases_fully_resolve_and_lint_clean() {
    for (name, src) in [CASES[0], CASES[1]] {
        let case = case_for(name, src);
        let ip = Interproc::analyze(&case.program).unwrap();
        assert!(ip.is_resolved(), "{name}: {:?}", ip.resolution());
        assert!(ip.fully_resolved(), "{name}: unresolved jalr remains");
        let report = lint_program(&case.program).unwrap();
        assert!(report.is_clean(), "{name}: {:?}", report.lints);
    }
    // The spill case is the one that needs the frame argument.
    let ip = Interproc::analyze(&case_for(CASES[1].0, CASES[1].1).program).unwrap();
    assert!(ip.callgraph().functions.len() == 3, "expected main + outer + inner");
}

#[test]
fn recursive_case_is_rejected_by_the_discipline_proof() {
    let case = case_for(CASES[2].0, CASES[2].1);
    let ip = Interproc::analyze(&case.program).unwrap();
    assert!(!ip.is_resolved(), "recursion must not resolve");
    let Resolution::Conservative { reasons } = ip.resolution() else {
        panic!("expected conservative resolution");
    };
    assert!(
        reasons.iter().any(|r| r.contains("recursive")),
        "expected a recursion reason, got {reasons:?}"
    );
    assert_eq!(ip.resolved_returns(), 0);

    // And yet the program is fine dynamically: it halts with the
    // expected accumulator (6+5+...+1 = 21).
    let mut it = blackjack_isa::Interp::new(&case.program);
    it.run(100_000).unwrap();
    assert!(it.halted());
    assert_eq!(it.mem().read_u64(0x400000), 21);
}
