//! Replays every checked-in corpus case under `tests/corpus/` (repo
//! root). Failure cases must still be handled soundly (they are kept
//! only after the underlying bug is fixed, so they must pass);
//! interesting cases are regression anchors for the differential
//! surface. Runs offline as part of `cargo test --workspace`.

use std::path::PathBuf;

use blackjack_analysis::SiteAnalysis;
use blackjack_fuzz::oracle::{check_fault_universe, golden_memory, run_taxonomy};
use blackjack_fuzz::{check_fault_free, Case};
use blackjack_sim::FuCounts;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_cases() -> Vec<(PathBuf, Case)> {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bjcase"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let case = Case::load(&p).unwrap_or_else(|e| panic!("{e}"));
            (p, case)
        })
        .collect()
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let cases = corpus_cases();
    assert!(
        cases.len() >= 10,
        "expected the seeded corpus (10+ cases), found {}",
        cases.len()
    );
    for (path, case) in &cases {
        assert!(!case.name.is_empty(), "{}: unnamed case", path.display());
        assert!(
            case.program.decode_all().is_ok(),
            "{}: text does not decode",
            path.display()
        );
    }
}

#[test]
fn corpus_cases_replay_clean() {
    for (path, case) in corpus_cases() {
        // Differential surface first: all four modes, commit-log replay.
        check_fault_free(&case.program)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Cases that carry a fault spec must also replay soundly, under
        // their own temporal model and ECC setting; cases that pin a
        // CE/DUE/SDC verdict must reproduce it exactly.
        if let Some(fault) = case.fault {
            let analysis = SiteAnalysis::analyze(&case.program, &FuCounts::default())
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let golden = golden_memory(&case.program);
            check_fault_universe(
                &case.program,
                &analysis,
                fault,
                case.temporal,
                case.arm,
                case.ecc,
                &golden,
            )
            .unwrap_or_else(|s| panic!("{}: unsound replay: {s}", path.display()));
            if let Some(want) = case.expect {
                let plan = case.plan().expect("fault is present");
                let got = run_taxonomy(&case.program, plan, case.ecc, &golden);
                assert_eq!(got, want, "{}: taxonomy drifted", path.display());
            }
        }
    }
}

#[test]
fn corpus_serialization_is_stable() {
    // Re-serializing a loaded case reproduces the file byte-for-byte —
    // corpus churn in diffs always means real content changes.
    for (path, case) in corpus_cases() {
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(case.to_text(), on_disk, "{}: unstable serialization", path.display());
    }
}
