//! `bjsim` — run a BJ-ISA assembly file on the BlackJack simulator.
//!
//! ```text
//! bjsim [options] <program.s>
//!
//! options:
//!   --mode single|srt|blackjack-ns|blackjack    (default: blackjack)
//!   --shuffle greedy|exhaustive                 (default: greedy)
//!   --slack N                                   (default: 256)
//!   --fault SITE:WAY[:BIT]  inject a stuck-at-1 hard fault; SITE is
//!                           `backend`, `frontend`, or `payload`
//!   --max-cycles N                              (default: 1 billion)
//!   --oracle        cross-check every commit against the interpreter
//!                   (single mode, fault-free only)
//!   --quiet         print only the outcome line
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run --release --bin bjsim -- --mode blackjack --fault backend:4:5 prog.s
//! ```
//!
//! When `BJ_TRACE=<path>` is set the run is traced: occupancy
//! histograms, the `(class, way)` issue heatmap, the flight recorder's
//! final window, and any detection event are written to `<path>` as
//! JSONL (render with `bj-trace`). The path is validated up front —
//! empty or unwritable values exit with status 2. `BJ_TRACE_DEPTH=<n>`
//! overrides the flight recorder's event capacity (default 256) for
//! deeper post-detection forensics; zero or non-numeric values exit
//! with status 2.

use std::process::exit;

use blackjack::envcfg;
use blackjack::faults::{AreaModel, FaultPlan, FaultSite, HardFault};
use blackjack::isa::asm::assemble_named;
use blackjack::sim::{Core, CoreConfig, Mode, RunOutcome, ShuffleAlgo, FLIGHT_CAPACITY};
use blackjack::telemetry::TraceWriter;

fn usage() -> ! {
    eprintln!("usage: bjsim [--mode M] [--shuffle S] [--slack N] [--fault SITE:WAY[:BIT]] [--max-cycles N] [--oracle] [--quiet] <program.s>");
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = CoreConfig::with_mode(Mode::BlackJack);
    let mut plan = FaultPlan::new();
    let mut path: Option<String> = None;
    let mut max_cycles: u64 = 1_000_000_000;
    let mut oracle = false;
    let mut quiet = false;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => {
                let m = args.next().unwrap_or_else(|| usage());
                cfg.mode = match m.as_str() {
                    "single" => Mode::Single,
                    "srt" => Mode::Srt,
                    "blackjack-ns" => Mode::BlackJackNoShuffle,
                    "blackjack" => Mode::BlackJack,
                    other => {
                        eprintln!("unknown mode `{other}`");
                        usage()
                    }
                };
            }
            "--shuffle" => {
                let m = args.next().unwrap_or_else(|| usage());
                cfg.shuffle_algo = match m.as_str() {
                    "greedy" => ShuffleAlgo::Greedy,
                    "exhaustive" => ShuffleAlgo::Exhaustive,
                    other => {
                        eprintln!("unknown shuffle algorithm `{other}`");
                        usage()
                    }
                };
            }
            "--slack" => {
                cfg.slack = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-cycles" => {
                max_cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fault" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() < 2 || parts.len() > 3 {
                    eprintln!("bad fault spec `{spec}` (want SITE:WAY[:BIT])");
                    usage();
                }
                let way: usize = parts[1].parse().unwrap_or_else(|_| usage());
                let bit: u8 = parts.get(2).map(|b| b.parse().unwrap_or_else(|_| usage())).unwrap_or(0);
                let site = match parts[0] {
                    "backend" => FaultSite::Backend { way },
                    "frontend" => FaultSite::Frontend { way },
                    "payload" => FaultSite::PayloadRam { entry: way },
                    other => {
                        eprintln!("unknown fault site `{other}`");
                        usage()
                    }
                };
                plan.add(HardFault::stuck_bit(site, bit));
            }
            "--oracle" => oracle = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unknown option `{other}`");
                usage()
            }
        }
    }

    let Some(path) = path else { usage() };
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let prog = assemble_named(&src, &path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    });

    let mut writer = TraceWriter::from_env_or_exit("bjsim");
    let trace_depth = envcfg::positive_from_env::<usize>("BJ_TRACE_DEPTH")
        .unwrap_or_else(|e| envcfg::exit_invalid(&e))
        .unwrap_or(FLIGHT_CAPACITY);
    let mut core = Core::new(cfg.clone(), &prog, plan);
    if oracle {
        core.enable_oracle(&prog);
    }
    if writer.is_some() {
        core.enable_trace_with_capacity(trace_depth);
    }
    let outcome = core.run(max_cycles);

    if let Some(w) = writer.as_mut() {
        let state = core.take_trace().expect("tracing was enabled");
        w.emit_run(&path, core.stats(), Some(&state));
        w.emit_heatmap(&path, &state.heat);
        w.emit_flight(&state.flight.events());
        if let RunOutcome::Detected(ev) = &outcome {
            w.emit_detection(ev);
        }
    }

    let s = core.stats();
    match outcome {
        RunOutcome::Completed => println!("completed: {} instructions, {} cycles (IPC {:.3})",
            s.committed[0], s.cycles, s.ipc()),
        RunOutcome::Detected(ev) => println!("DETECTED: {ev}"),
        RunOutcome::CycleLimit => {
            println!("cycle limit reached at {}", s.cycles);
            if !quiet {
                eprintln!("{}", core.debug_state());
            }
            exit(3);
        }
        // bjsim never arms the campaign early-exit checks (stall window /
        // quiesce cycle), so this is defensive only.
        RunOutcome::EarlyExit(r) => println!("early exit ({r}) at cycle {}", s.cycles),
    }
    if quiet {
        return;
    }
    if cfg.mode.is_redundant() {
        let area = AreaModel::default();
        println!(
            "coverage: {:.1}% total ({:.1}% frontend, {:.1}% backend) over {} pairs",
            100.0 * s.total_coverage(&area),
            100.0 * s.frontend_coverage(),
            100.0 * s.backend_coverage(),
            s.coverage.pairs
        );
        println!(
            "interference: {:.2}% leading-trailing, {:.2}% trailing-trailing; burstiness {:.1}%",
            100.0 * s.lt_interference(),
            100.0 * s.tt_interference(),
            100.0 * s.burstiness()
        );
        if cfg.mode.uses_dtq() {
            println!(
                "shuffle: {} packets, {} splits, {} filler NOPs, {} forced",
                s.shuffle_packets, s.shuffle_splits, s.shuffle_nops, s.shuffle_forced
            );
        }
        println!("checks: {} stores compared", s.store_checks);
    }
    println!(
        "branches: {} committed, {} mispredicted; squashed {} wrong-path instructions",
        s.branches, s.mispredicts, s.squashed
    );
    let m = core.mem_sys();
    println!(
        "caches: L1D {:.2}% miss, L1I {:.2}% miss, L2 {:.2}% miss, {} memory accesses",
        100.0 * m.l1d_stats().miss_rate(),
        100.0 * m.l1i_stats().miss_rate(),
        100.0 * m.l2_stats().miss_rate(),
        m.mem_accesses()
    );
}
