//! The experiment runner: drives benchmarks through the simulator modes
//! and extracts the paper's figures.

use blackjack_faults::{AreaModel, FaultPlan};
use blackjack_sim::{Core, CoreConfig, Mode, RunOutcome, SimStats, TraceState};
use blackjack_workloads::{build, Benchmark};

use crate::campaign::{Campaign, CampaignTrace};

/// Default cycle budget per run — far above anything the kernels need.
const DEFAULT_MAX_CYCLES: u64 = 200_000_000;

/// Configures and runs the paper's evaluation.
///
/// # Example
///
/// ```no_run
/// use blackjack::Experiment;
///
/// let result = Experiment::new().run_all();
/// println!("{}", result.fig4_table());
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    scale: u32,
    max_cycles: u64,
    base: CoreConfig,
    trace: bool,
    snapshot: bool,
}

impl Default for Experiment {
    fn default() -> Experiment {
        Experiment::new()
    }
}

impl Experiment {
    /// An experiment with the paper's Table 1 configuration at workload
    /// scale 1 (tens of thousands of dynamic instructions per benchmark).
    pub fn new() -> Experiment {
        Experiment {
            scale: 1,
            max_cycles: DEFAULT_MAX_CYCLES,
            base: CoreConfig::default(),
            trace: false,
            snapshot: true,
        }
    }

    /// Multiplies every benchmark's iteration count.
    pub fn scale(mut self, scale: u32) -> Experiment {
        self.scale = scale;
        self
    }

    /// Overrides the base core configuration (mode is set per run).
    pub fn config(mut self, cfg: CoreConfig) -> Experiment {
        self.base = cfg;
        self
    }

    /// Overrides the slack target.
    pub fn slack(mut self, slack: u64) -> Experiment {
        self.base.slack = slack;
        self
    }

    /// Enables per-run tracing: each [`ModeResult`] carries the run's
    /// occupancy histograms, heatmap, and flight dump. Off by default —
    /// the untraced hot loop stays allocation-free.
    pub fn with_trace(mut self, trace: bool) -> Experiment {
        self.trace = trace;
        self
    }

    /// Routes every run through the snapshot-fork machinery
    /// ([`Core::snapshot`] at cycle 0, then a fork) instead of driving
    /// the constructed core directly. On by default (`BJ_SNAPSHOT`): the
    /// figure runs are fault-free, so there is no prefix to share and no
    /// speed to gain here, but the figures then *prove* restore-exactness
    /// on every benchmark × mode — the tables must be byte-identical
    /// either way.
    pub fn with_snapshot(mut self, snapshot: bool) -> Experiment {
        self.snapshot = snapshot;
        self
    }

    /// The base configuration.
    pub fn base_config(&self) -> &CoreConfig {
        &self.base
    }

    /// Runs one benchmark in one mode.
    ///
    /// # Panics
    ///
    /// Panics if the run does not complete (fault-free runs must finish).
    pub fn run_one(&self, bench: Benchmark, mode: Mode) -> ModeResult {
        let prog = build(bench, self.scale);
        let mut cfg = self.base.clone();
        cfg.mode = mode;
        let mut core = Core::new(cfg, &prog, FaultPlan::new());
        if self.snapshot {
            // Fork-at-cycle-0: the run goes through the same snapshot
            // machinery the injection campaigns use, so the figure tables
            // continuously re-verify restore-exactness.
            core = core.snapshot().fork(FaultPlan::new());
        }
        if self.trace {
            core.enable_trace();
        }
        let outcome = core.run(self.max_cycles);
        assert!(
            outcome.completed(),
            "{bench} in {mode} mode did not complete: {outcome:?}\n{}",
            core.debug_state()
        );
        let trace = core.take_trace();
        ModeResult { bench, mode, stats: core.stats().clone(), outcome, trace }
    }

    /// Runs one benchmark in all four modes.
    pub fn run_benchmark(&self, bench: Benchmark) -> BenchmarkResult {
        let single = self.run_one(bench, Mode::Single);
        let srt = self.run_one(bench, Mode::Srt);
        let ns = self.run_one(bench, Mode::BlackJackNoShuffle);
        let bj = self.run_one(bench, Mode::BlackJack);
        BenchmarkResult { bench, single, srt, ns, bj }
    }

    /// Runs the whole evaluation (16 benchmarks × 4 modes) on a campaign
    /// sized from the environment (`BJ_THREADS`), exiting with a clear
    /// message when the override is malformed.
    pub fn run_all(&self) -> ExperimentResult {
        self.run_all_on(&Campaign::from_env_or_exit())
    }

    /// Runs the whole evaluation on an explicit campaign. Every
    /// (benchmark, mode) pair is one job, so the worker pool levels load
    /// at mode granularity; results reassemble in benchmark order and are
    /// identical for any worker count.
    pub fn run_all_on(&self, campaign: &Campaign) -> ExperimentResult {
        self.assemble(campaign.run(self.jobs()))
    }

    /// [`Experiment::run_all_on`] plus the campaign's per-job scheduling
    /// telemetry (for the `BJ_TRACE` JSONL stream). The experiment
    /// tables are identical to [`Experiment::run_all_on`]'s — only the
    /// timing side-channel is added.
    pub fn run_all_traced_on(&self, campaign: &Campaign) -> (ExperimentResult, CampaignTrace) {
        let (runs, trace) = campaign.run_traced(self.jobs());
        (self.assemble(runs), trace)
    }

    /// `"bench/mode"` labels for the flat job list, in job order —
    /// matches [`CampaignTrace::timings`] indices.
    pub fn job_labels() -> Vec<String> {
        Benchmark::ALL
            .iter()
            .flat_map(|&b| Mode::ALL.iter().map(move |&m| format!("{}/{m}", b.name())))
            .collect()
    }

    fn jobs(&self) -> Vec<impl FnOnce() -> ModeResult + Send + use<'_>> {
        Benchmark::ALL
            .iter()
            .flat_map(|&b| Mode::ALL.iter().map(move |&m| (b, m)))
            .map(|(b, m)| move || self.run_one(b, m))
            .collect()
    }

    fn assemble(&self, runs: Vec<ModeResult>) -> ExperimentResult {
        let mut runs = runs.into_iter();
        let rows = Benchmark::ALL
            .iter()
            .map(|&bench| {
                let mut next = |mode: Mode| {
                    let r = runs.next().expect("one run per (benchmark, mode)");
                    assert_eq!((r.bench, r.mode), (bench, mode), "job order");
                    r
                };
                BenchmarkResult {
                    bench,
                    single: next(Mode::Single),
                    srt: next(Mode::Srt),
                    ns: next(Mode::BlackJackNoShuffle),
                    bj: next(Mode::BlackJack),
                }
            })
            .collect();
        ExperimentResult { rows, area: AreaModel::default() }
    }
}

/// One (benchmark, mode) run.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// The benchmark.
    pub bench: Benchmark,
    /// The mode.
    pub mode: Mode,
    /// Full statistics.
    pub stats: SimStats,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The run's observability record, when the experiment was built
    /// [`Experiment::with_trace`].
    pub trace: Option<Box<TraceState>>,
}

/// One benchmark across all four modes.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// The benchmark.
    pub bench: Benchmark,
    /// Non-fault-tolerant baseline.
    pub single: ModeResult,
    /// SRT.
    pub srt: ModeResult,
    /// BlackJack-NS (no shuffle).
    pub ns: ModeResult,
    /// Full BlackJack.
    pub bj: ModeResult,
}

impl BenchmarkResult {
    /// Performance of `mode` normalized to the single-thread baseline
    /// (1.0 = no slowdown), the Figure 7 metric.
    pub fn normalized_perf(&self, mode: Mode) -> f64 {
        let cycles = match mode {
            Mode::Single => self.single.stats.cycles,
            Mode::Srt => self.srt.stats.cycles,
            Mode::BlackJackNoShuffle => self.ns.stats.cycles,
            Mode::BlackJack => self.bj.stats.cycles,
        };
        self.single.stats.cycles as f64 / cycles as f64
    }
}

/// The full 16-benchmark evaluation with figure extractors.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-benchmark rows, in the paper's plotting order.
    pub rows: Vec<BenchmarkResult>,
    /// The area model used for coverage weighting.
    pub area: AreaModel,
}

fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = vals.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

impl ExperimentResult {
    /// Figure 4a series: per-benchmark whole-pipeline coverage for SRT and
    /// BlackJack, in percent.
    pub fn fig4a(&self) -> Vec<(String, f64, f64)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.bench.name().to_string(),
                    100.0 * r.srt.stats.total_coverage(&self.area),
                    100.0 * r.bj.stats.total_coverage(&self.area),
                )
            })
            .collect()
    }

    /// Figure 4b series: backend-only coverage, in percent.
    pub fn fig4b(&self) -> Vec<(String, f64, f64)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.bench.name().to_string(),
                    100.0 * r.srt.stats.backend_coverage(),
                    100.0 * r.bj.stats.backend_coverage(),
                )
            })
            .collect()
    }

    /// Figure 5 series: % of issue cycles with trailing-trailing and
    /// leading-trailing diversity-violating interference (BlackJack mode).
    pub fn fig5(&self) -> Vec<(String, f64, f64)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.bench.name().to_string(),
                    100.0 * r.bj.stats.tt_interference(),
                    100.0 * r.bj.stats.lt_interference(),
                )
            })
            .collect()
    }

    /// Figure 6 series: % of issue cycles issuing from one context
    /// (BlackJack mode).
    pub fn fig6(&self) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .map(|r| (r.bench.name().to_string(), 100.0 * r.bj.stats.burstiness()))
            .collect()
    }

    /// Figure 7 series: performance of SRT, BlackJack-NS, and BlackJack
    /// normalized to single-thread, in percent.
    pub fn fig7(&self) -> Vec<(String, f64, f64, f64)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.bench.name().to_string(),
                    100.0 * r.normalized_perf(Mode::Srt),
                    100.0 * r.normalized_perf(Mode::BlackJackNoShuffle),
                    100.0 * r.normalized_perf(Mode::BlackJack),
                )
            })
            .collect()
    }

    /// Renders Figure 4 (a and b) as text.
    pub fn fig4_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Figure 4: hard-error instruction coverage (%)\n");
        s.push_str(&format!(
            "{:10} | {:>8} {:>10} | {:>8} {:>10}\n",
            "benchmark", "SRT(4a)", "BJack(4a)", "SRT(4b)", "BJack(4b)"
        ));
        for ((name, s4a, b4a), (_, s4b, b4b)) in self.fig4a().into_iter().zip(self.fig4b()) {
            s.push_str(&format!(
                "{name:10} | {s4a:8.1} {b4a:10.1} | {s4b:8.1} {b4b:10.1}\n"
            ));
        }
        let a = self.fig4a();
        let b = self.fig4b();
        s.push_str(&format!(
            "{:10} | {:8.1} {:10.1} | {:8.1} {:10.1}\n",
            "average",
            mean(a.iter().map(|r| r.1)),
            mean(a.iter().map(|r| r.2)),
            mean(b.iter().map(|r| r.1)),
            mean(b.iter().map(|r| r.2)),
        ));
        s
    }

    /// Renders Figure 5 as text.
    pub fn fig5_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Figure 5: issue cycles with diversity-violating interference (%)\n");
        s.push_str(&format!(
            "{:10} | {:>16} {:>16}\n",
            "benchmark", "trailing-trailing", "leading-trailing"
        ));
        for (name, tt, lt) in self.fig5() {
            s.push_str(&format!("{name:10} | {tt:16.2} {lt:16.2}\n"));
        }
        let f = self.fig5();
        s.push_str(&format!(
            "{:10} | {:16.2} {:16.2}\n",
            "average",
            mean(f.iter().map(|r| r.1)),
            mean(f.iter().map(|r| r.2)),
        ));
        s
    }

    /// Renders Figure 6 as text.
    pub fn fig6_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Figure 6: issue cycles with all instructions from one context (%)\n");
        for (name, burst) in self.fig6() {
            s.push_str(&format!("{name:10} | {burst:6.1}\n"));
        }
        s.push_str(&format!(
            "{:10} | {:6.1}\n",
            "average",
            mean(self.fig6().iter().map(|r| r.1))
        ));
        s
    }

    /// Renders Figure 7 as text.
    pub fn fig7_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Figure 7: performance normalized to single thread (%)\n");
        s.push_str(&format!(
            "{:10} | {:>6} {:>12} {:>10}\n",
            "benchmark", "SRT", "BlackJack-NS", "BlackJack"
        ));
        for (name, srt, ns, bj) in self.fig7() {
            s.push_str(&format!("{name:10} | {srt:6.1} {ns:12.1} {bj:10.1}\n"));
        }
        let f = self.fig7();
        s.push_str(&format!(
            "{:10} | {:6.1} {:12.1} {:10.1}\n",
            "average",
            mean(f.iter().map(|r| r.1)),
            mean(f.iter().map(|r| r.2)),
            mean(f.iter().map(|r| r.3)),
        ));
        s
    }

    /// Aggregate simulator throughput over every run in the evaluation:
    /// `(simulated cycles, in-core wall seconds, cycles per second)`.
    /// Wall time is summed across runs, so this measures the core's own
    /// speed independent of how many campaign workers ran the jobs.
    pub fn throughput(&self) -> (u64, f64, f64) {
        let mut cycles = 0u64;
        let mut nanos = 0u64;
        for r in &self.rows {
            for m in [&r.single, &r.srt, &r.ns, &r.bj] {
                cycles += m.stats.cycles;
                nanos += m.stats.wall_nanos;
            }
        }
        let cps = if nanos == 0 { 0.0 } else { cycles as f64 * 1e9 / nanos as f64 };
        (cycles, nanos as f64 / 1e9, cps)
    }

    /// Headline numbers in the abstract's terms: (SRT coverage %, BlackJack
    /// coverage %, BlackJack slowdown vs SRT %).
    pub fn headline(&self) -> (f64, f64, f64) {
        let srt_cov = mean(self.fig4a().iter().map(|r| r.1));
        let bj_cov = mean(self.fig4a().iter().map(|r| r.2));
        let srt_perf = mean(self.fig7().iter().map(|r| r.1));
        let bj_perf = mean(self.fig7().iter().map(|r| r.3));
        (srt_cov, bj_cov, 100.0 * (1.0 - bj_perf / srt_perf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_benchmark_all_modes() {
        let r = Experiment::new().run_benchmark(Benchmark::Gzip);
        assert!(r.single.outcome.completed());
        assert!(r.srt.outcome.completed());
        assert!(r.ns.outcome.completed());
        assert!(r.bj.outcome.completed());
        // All redundant modes commit the same leading instruction count.
        assert_eq!(r.single.stats.committed[0], r.srt.stats.committed[0]);
        assert_eq!(r.single.stats.committed[0], r.bj.stats.committed[0]);
        // Redundant modes pair every instruction.
        assert_eq!(r.bj.stats.committed[0], r.bj.stats.committed[1]);
        // Performance ordering: single >= srt >= bj.
        assert!(r.normalized_perf(Mode::Srt) <= 1.0);
        assert!(r.normalized_perf(Mode::BlackJack) <= r.normalized_perf(Mode::Srt) + 0.02);
    }

    #[test]
    fn coverage_gap_on_one_benchmark() {
        let r = Experiment::new().run_benchmark(Benchmark::Vortex);
        let area = AreaModel::default();
        let srt = r.srt.stats.total_coverage(&area);
        let bj = r.bj.stats.total_coverage(&area);
        assert!(bj > 0.9, "BlackJack coverage {bj}");
        assert!(srt < 0.6, "SRT coverage {srt}");
        assert_eq!(r.bj.stats.frontend_coverage(), 1.0, "shuffle guarantees the frontend");
        assert_eq!(r.srt.stats.frontend_coverage(), 0.0, "SRT has no frontend diversity");
    }
}
