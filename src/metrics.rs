//! # Campaign-scale metrics: a typed, mergeable, zero-overhead registry
//!
//! Counters, gauges, and fixed-bucket histograms for everything a
//! campaign does — jobs run, snapshots taken/refilled/retired, forks and
//! their catch-up cycles, per-`exit_reason` verdict counts, pruning
//! tallies — plus wall-clock phase attribution (setup / snapshot /
//! simulate / oracle / reassembly).
//!
//! The design borrows both disciplines that made `sim::trace` safe to
//! leave in the hot path:
//!
//! * **Zero overhead when off.** [`Metrics`] is an enum —
//!   [`Metrics::Off`] or [`Metrics::On`]`(Box<MetricsRegistry>)` — the
//!   same dispatch trick as `Tracer::Off`. Every recording method is a
//!   single discriminant test on the off path; the registry itself is
//!   only ever allocated when `BJ_METRICS=1`.
//! * **Deterministic merge algebra.** Counters and histograms merge by
//!   element-wise sum, gauges by max — associative and commutative with
//!   the empty registry as identity — so per-worker shards merged in any
//!   order produce identical totals. The campaign engine merges shards
//!   in worker-index order; the result is byte-identical for 1 and 8
//!   workers (pinned by `tests/metrics_determinism.rs`).
//!
//! **Deterministic vs. nondeterministic metrics.** Counts of *events*
//! (jobs, forks, exit reasons, snapshot takes) are identical run to run;
//! *timing* metrics (the `*_nanos` counters and the job-latency
//! histogram) are not. Every metric is statically tagged
//! ([`Counter::nondet`]), the JSON emitters segregate the two
//! ([`MetricsRegistry::to_json`] puts every nondeterministic field after
//! the `"nondet"` marker), and [`MetricsRegistry::deterministic_json`]
//! drops the timing side entirely — that string is the determinism
//! test's byte-comparison artifact.

use blackjack_sim::{ExitReason, Histogram};

use crate::envcfg::{self, EnvError};

/// Bucket width of the fork catch-up histogram: 32-cycle buckets cover
/// the periodic chain's `0..SNAPSHOT_INTERVAL` catch-up range across the
/// histogram's 33 buckets.
pub const CATCHUP_BUCKET_CYCLES: u64 = 32;

/// Bucket width of the job-latency histogram: 2 ms buckets (the campaign
/// kernels' injection jobs run single-digit milliseconds).
pub const JOB_NANOS_BUCKET: u64 = 2_000_000;

/// Every counter the registry holds. Deterministic counters count
/// campaign *events*; the `*Nanos` counters accumulate wall-clock and are
/// tagged nondeterministic ([`Counter::nondet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Campaign jobs executed (injection jobs, bench runs, …).
    Jobs,
    /// Group setups executed (fault-free reference passes).
    Setups,
    /// Injection runs actually simulated (not pruned away).
    RunsSimulated,
    /// Snapshots taken fresh (allocator-touching).
    SnapshotsTaken,
    /// Snapshots refreshed in place from the spare pool.
    SnapshotsRefilled,
    /// Snapshots retired by the sliding horizon / thinning.
    SnapshotsRetired,
    /// Injection cores minted by forking a snapshot.
    SnapshotForks,
    /// Fault-free cycles replayed by `fork_catchup` (sum).
    ForkCatchupCycles,
    /// Runs that ended with `ExitReason::Completed`.
    ExitCompleted,
    /// Runs that ended with `ExitReason::Detected`.
    ExitDetected,
    /// Runs that ended with `ExitReason::CycleLimit`.
    ExitCycleLimit,
    /// Runs that ended with `ExitReason::Converged` (early exit).
    ExitConverged,
    /// Runs that ended with `ExitReason::Stalled` (early exit).
    ExitStalled,
    /// Sites statically proven benign — no simulation at all.
    PrunedStatic,
    /// Sites activation-pruned by the reference usage schedule — benign
    /// with no simulation (early-exit mechanism 1).
    PrunedActivation,
    /// Wall nanos in group setup (reference passes, analysis), excluding
    /// snapshot-chain building.
    SetupNanos,
    /// Wall nanos building snapshot chains.
    SnapshotBuildNanos,
    /// Wall nanos forking injection cores from snapshots.
    SnapshotForkNanos,
    /// Wall nanos inside `Core::run` for injection runs.
    SimulateNanos,
    /// Wall nanos comparing final memory against the golden image.
    OracleNanos,
    /// Wall nanos assembling tallies, labels, and report text.
    ReassemblyNanos,
}

impl Counter {
    /// All counters, in declaration (= JSON emission) order.
    pub const ALL: [Counter; 21] = [
        Counter::Jobs,
        Counter::Setups,
        Counter::RunsSimulated,
        Counter::SnapshotsTaken,
        Counter::SnapshotsRefilled,
        Counter::SnapshotsRetired,
        Counter::SnapshotForks,
        Counter::ForkCatchupCycles,
        Counter::ExitCompleted,
        Counter::ExitDetected,
        Counter::ExitCycleLimit,
        Counter::ExitConverged,
        Counter::ExitStalled,
        Counter::PrunedStatic,
        Counter::PrunedActivation,
        Counter::SetupNanos,
        Counter::SnapshotBuildNanos,
        Counter::SnapshotForkNanos,
        Counter::SimulateNanos,
        Counter::OracleNanos,
        Counter::ReassemblyNanos,
    ];

    /// Stable snake_case JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Jobs => "jobs",
            Counter::Setups => "setups",
            Counter::RunsSimulated => "runs_simulated",
            Counter::SnapshotsTaken => "snapshots_taken",
            Counter::SnapshotsRefilled => "snapshots_refilled",
            Counter::SnapshotsRetired => "snapshots_retired",
            Counter::SnapshotForks => "snapshot_forks",
            Counter::ForkCatchupCycles => "fork_catchup_cycles",
            Counter::ExitCompleted => "exit_completed",
            Counter::ExitDetected => "exit_detected",
            Counter::ExitCycleLimit => "exit_cycle_limit",
            Counter::ExitConverged => "exit_converged",
            Counter::ExitStalled => "exit_stalled",
            Counter::PrunedStatic => "pruned_static",
            Counter::PrunedActivation => "pruned_activation",
            Counter::SetupNanos => "setup_nanos",
            Counter::SnapshotBuildNanos => "snapshot_build_nanos",
            Counter::SnapshotForkNanos => "snapshot_fork_nanos",
            Counter::SimulateNanos => "simulate_nanos",
            Counter::OracleNanos => "oracle_nanos",
            Counter::ReassemblyNanos => "reassembly_nanos",
        }
    }

    /// True for wall-clock counters, which vary run to run and are
    /// excluded from [`MetricsRegistry::deterministic_json`].
    pub fn nondet(self) -> bool {
        matches!(
            self,
            Counter::SetupNanos
                | Counter::SnapshotBuildNanos
                | Counter::SnapshotForkNanos
                | Counter::SimulateNanos
                | Counter::OracleNanos
                | Counter::ReassemblyNanos
        )
    }

    /// The per-`exit_reason` counter for `reason`.
    pub fn of_exit(reason: ExitReason) -> Counter {
        match reason {
            ExitReason::Completed => Counter::ExitCompleted,
            ExitReason::Detected => Counter::ExitDetected,
            ExitReason::CycleLimit => Counter::ExitCycleLimit,
            ExitReason::Converged => Counter::ExitConverged,
            ExitReason::Stalled => Counter::ExitStalled,
        }
    }
}

/// Gauges: merged by **max**, not sum — high-water marks survive the
/// shard merge without double counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Campaign worker count.
    Workers,
    /// Peak snapshots retained by any one chain build.
    PeakRetainedSnapshots,
}

impl Gauge {
    /// All gauges, in declaration (= JSON emission) order.
    pub const ALL: [Gauge; 2] = [Gauge::Workers, Gauge::PeakRetainedSnapshots];

    /// Stable snake_case JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Workers => "workers",
            Gauge::PeakRetainedSnapshots => "peak_retained_snapshots",
        }
    }
}

/// The metric store: fixed arrays indexed by [`Counter`]/[`Gauge`]
/// discriminants plus two fixed-bucket histograms. ~700 bytes, cheap to
/// allocate per worker and merge at campaign end.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    counters: [u64; Counter::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
    /// Fork catch-up cycles per fork (deterministic).
    catchup_cycles: Histogram,
    /// Per-job wall nanos (nondeterministic).
    job_nanos: Histogram,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            counters: [0; Counter::ALL.len()],
            gauges: [0; Gauge::ALL.len()],
            catchup_cycles: Histogram::with_width(CATCHUP_BUCKET_CYCLES),
            job_nanos: Histogram::with_width(JOB_NANOS_BUCKET),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry (the merge identity).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to `c`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Increments `c` by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Reads counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Raises gauge `g` to at least `v` (high-water mark).
    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        let slot = &mut self.gauges[g as usize];
        *slot = (*slot).max(v);
    }

    /// Reads gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Records one fork's catch-up distance (cycles).
    #[inline]
    pub fn record_catchup(&mut self, cycles: u64) {
        self.catchup_cycles.record(cycles);
        self.add(Counter::ForkCatchupCycles, cycles);
    }

    /// Records one job's wall time (nanos).
    #[inline]
    pub fn record_job_nanos(&mut self, nanos: u64) {
        self.job_nanos.record(nanos);
    }

    /// The catch-up histogram (deterministic).
    pub fn catchup_histogram(&self) -> &Histogram {
        &self.catchup_cycles
    }

    /// The job-latency histogram (nondeterministic).
    pub fn job_nanos_histogram(&self) -> &Histogram {
        &self.job_nanos
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self == &MetricsRegistry::default()
    }

    /// Merges `other` into `self`: counters and histograms sum, gauges
    /// take the max. Associative and commutative, so shard merge order
    /// cannot change the total.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = (*a).max(*b);
        }
        self.catchup_cycles.merge(&other.catchup_cycles);
        self.job_nanos.merge(&other.job_nanos);
    }

    /// Deterministic counters, gauges, and the catch-up histogram as one
    /// JSON object — identical for any worker count. This is the string
    /// the 1-vs-8-worker determinism test compares byte for byte.
    pub fn deterministic_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        let mut first = true;
        for c in Counter::ALL {
            if c.nondet() {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{}\":{}", c.name(), self.get(c)));
        }
        s.push_str("},\"gauges\":{");
        for (i, g) in Gauge::ALL.into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", g.name(), self.gauge(g)));
        }
        s.push_str(&format!(
            "}},\"catchup_cycles\":{}}}",
            self.catchup_cycles.to_json()
        ));
        s
    }

    /// The full registry as one JSON object: the deterministic fields
    /// first, then a `"nondet"` array naming every field that follows it
    /// — the contract consumers use to strip timing noise (`sed
    /// 's/,"nondet":.*/}/'` leaves exactly the deterministic prefix).
    pub fn to_json(&self) -> String {
        let det = self.deterministic_json();
        let mut nondet_names: Vec<String> =
            Counter::ALL.iter().filter(|c| c.nondet()).map(|c| format!("\"{}\"", c.name())).collect();
        nondet_names.push("\"job_nanos\"".to_string());
        let mut s = det;
        s.pop(); // reopen the deterministic object
        s.push_str(&format!(",\"nondet\":[{}]", nondet_names.join(",")));
        for c in Counter::ALL {
            if c.nondet() {
                s.push_str(&format!(",\"{}\":{}", c.name(), self.get(c)));
            }
        }
        s.push_str(&format!(",\"job_nanos\":{}}}", self.job_nanos.to_json()));
        s
    }

    /// Wall-nanos attribution per campaign phase, in render order:
    /// `(phase name, nanos)` for setup / snapshot / simulate / oracle /
    /// reassembly. Snapshot = chain building + forking.
    pub fn phase_nanos(&self) -> [(&'static str, u64); 5] {
        [
            ("setup", self.get(Counter::SetupNanos)),
            (
                "snapshot",
                self.get(Counter::SnapshotBuildNanos) + self.get(Counter::SnapshotForkNanos),
            ),
            ("simulate", self.get(Counter::SimulateNanos)),
            ("oracle", self.get(Counter::OracleNanos)),
            ("reassembly", self.get(Counter::ReassemblyNanos)),
        ]
    }
}

/// The recording handle: [`Metrics::Off`] is a unit — every method is an
/// inlined discriminant test and nothing allocates — mirroring
/// `Tracer::Off`.
#[derive(Debug, Default)]
pub enum Metrics {
    /// Recording disabled; all methods are no-ops.
    #[default]
    Off,
    /// Recording into the boxed registry.
    On(Box<MetricsRegistry>),
}

impl Metrics {
    /// A live registry.
    pub fn enabled() -> Metrics {
        Metrics::On(Box::default())
    }

    /// `enabled()` or `Off` by flag — shard construction sites read the
    /// campaign's single `BJ_METRICS` decision, not the environment.
    pub fn when(on: bool) -> Metrics {
        if on {
            Metrics::enabled()
        } else {
            Metrics::Off
        }
    }

    /// Reads `BJ_METRICS` (flag grammar, default off).
    ///
    /// # Errors
    ///
    /// [`EnvError::NotAFlag`] for set, non-empty, non-flag values.
    pub fn from_env() -> Result<Metrics, EnvError> {
        Ok(Metrics::when(envcfg::metrics_from_env()?))
    }

    /// True when recording.
    pub fn is_on(&self) -> bool {
        matches!(self, Metrics::On(_))
    }

    /// The registry, when recording.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        match self {
            Metrics::Off => None,
            Metrics::On(r) => Some(r),
        }
    }

    /// Consumes the handle, returning the registry when recording.
    pub fn into_registry(self) -> Option<Box<MetricsRegistry>> {
        match self {
            Metrics::Off => None,
            Metrics::On(r) => Some(r),
        }
    }

    /// Adds `n` to `c` when recording.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        if let Metrics::On(r) = self {
            r.add(c, n);
        }
    }

    /// Increments `c` when recording.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Raises gauge `g` to at least `v` when recording.
    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        if let Metrics::On(r) = self {
            r.gauge_max(g, v);
        }
    }

    /// Records a fork catch-up distance when recording.
    #[inline]
    pub fn record_catchup(&mut self, cycles: u64) {
        if let Metrics::On(r) = self {
            r.record_catchup(cycles);
        }
    }

    /// Records a job's wall nanos when recording.
    #[inline]
    pub fn record_job_nanos(&mut self, nanos: u64) {
        if let Metrics::On(r) = self {
            r.record_job_nanos(nanos);
        }
    }

    /// Counts a run's exit reason when recording.
    #[inline]
    pub fn record_exit(&mut self, reason: Option<ExitReason>) {
        if let (Metrics::On(r), Some(reason)) = (self, reason) {
            r.inc(Counter::of_exit(reason));
        }
    }

    /// Merges a finished shard into this handle's registry. A shard from
    /// a metrics-off run (empty) merges as the identity; merging into an
    /// `Off` handle is a no-op.
    pub fn merge(&mut self, shard: &MetricsRegistry) {
        if let Metrics::On(r) = self {
            r.merge(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_and_read_back() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc(Counter::Jobs);
        r.add(Counter::Jobs, 2);
        r.add(Counter::SnapshotForks, 5);
        r.gauge_max(Gauge::Workers, 4);
        r.gauge_max(Gauge::Workers, 2); // lower: must not regress
        assert_eq!(r.get(Counter::Jobs), 3);
        assert_eq!(r.get(Counter::SnapshotForks), 5);
        assert_eq!(r.gauge(Gauge::Workers), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_is_commutative_and_has_identity() {
        let mut a = MetricsRegistry::new();
        a.add(Counter::Jobs, 7);
        a.gauge_max(Gauge::Workers, 2);
        a.record_catchup(100);
        a.record_job_nanos(5_000_000);
        let mut b = MetricsRegistry::new();
        b.add(Counter::Jobs, 4);
        b.add(Counter::PrunedStatic, 1);
        b.gauge_max(Gauge::Workers, 8);
        b.record_catchup(400);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.get(Counter::Jobs), 11);
        assert_eq!(ab.gauge(Gauge::Workers), 8, "gauges merge by max");
        assert_eq!(ab.catchup_histogram().total(), 2);

        let mut with_identity = a.clone();
        with_identity.merge(&MetricsRegistry::new());
        assert_eq!(with_identity, a, "empty registry is the merge identity");
    }

    #[test]
    fn off_handle_is_inert() {
        let mut m = Metrics::Off;
        m.inc(Counter::Jobs);
        m.record_catchup(10);
        m.record_job_nanos(10);
        m.gauge_max(Gauge::Workers, 9);
        m.record_exit(Some(ExitReason::Detected));
        assert!(!m.is_on());
        assert!(m.registry().is_none());
        assert!(m.into_registry().is_none());
    }

    #[test]
    fn on_handle_records_exits_per_reason() {
        let mut m = Metrics::enabled();
        m.record_exit(Some(ExitReason::Completed));
        m.record_exit(Some(ExitReason::Completed));
        m.record_exit(Some(ExitReason::Converged));
        m.record_exit(None); // pre-run / unknown: not counted
        let r = m.registry().unwrap();
        assert_eq!(r.get(Counter::ExitCompleted), 2);
        assert_eq!(r.get(Counter::ExitConverged), 1);
        assert_eq!(r.get(Counter::ExitDetected), 0);
    }

    #[test]
    fn every_exit_reason_has_its_own_counter() {
        let mut seen = Vec::new();
        for reason in ExitReason::ALL {
            let c = Counter::of_exit(reason);
            assert!(!c.nondet(), "exit counters are deterministic");
            assert!(!seen.contains(&c), "{reason:?} shares a counter");
            seen.push(c);
        }
    }

    #[test]
    fn deterministic_json_excludes_every_nondet_field() {
        let mut r = MetricsRegistry::new();
        r.add(Counter::Jobs, 3);
        r.add(Counter::SimulateNanos, 123_456);
        r.record_job_nanos(9_999);
        let det = r.deterministic_json();
        for c in Counter::ALL {
            if c.nondet() {
                assert!(!det.contains(c.name()), "{} leaked into deterministic json", c.name());
            } else {
                assert!(det.contains(c.name()), "{} missing from deterministic json", c.name());
            }
        }
        assert!(!det.contains("job_nanos"));
        assert!(det.contains("\"catchup_cycles\""));
    }

    #[test]
    fn full_json_puts_nondet_fields_after_the_marker() {
        let mut r = MetricsRegistry::new();
        r.add(Counter::Jobs, 1);
        r.add(Counter::OracleNanos, 55);
        let full = r.to_json();
        let marker = full.find("\"nondet\":[").expect("marker present");
        for c in Counter::ALL {
            let pos = full.find(&format!("\"{}\":", c.name())).unwrap_or_else(|| panic!("{}", c.name()));
            if c.nondet() {
                assert!(pos > marker, "{} must follow the nondet marker", c.name());
            } else {
                assert!(pos < marker, "{} must precede the nondet marker", c.name());
            }
        }
        // Stripping at the marker leaves the deterministic prefix, and
        // it is exactly `deterministic_json`.
        let stripped = format!("{}}}", &full[..marker - 1]);
        assert_eq!(stripped, r.deterministic_json());
    }

    #[test]
    fn phase_nanos_attributes_snapshot_build_plus_fork() {
        let mut r = MetricsRegistry::new();
        r.add(Counter::SetupNanos, 10);
        r.add(Counter::SnapshotBuildNanos, 20);
        r.add(Counter::SnapshotForkNanos, 5);
        r.add(Counter::SimulateNanos, 60);
        r.add(Counter::ReassemblyNanos, 1);
        let phases = r.phase_nanos();
        assert_eq!(phases[0], ("setup", 10));
        assert_eq!(phases[1], ("snapshot", 25));
        assert_eq!(phases[2], ("simulate", 60));
        assert_eq!(phases[3], ("oracle", 0));
        assert_eq!(phases[4], ("reassembly", 1));
    }

    #[test]
    fn when_and_from_env_shape() {
        assert!(Metrics::when(true).is_on());
        assert!(!Metrics::when(false).is_on());
        // BJ_METRICS is unset or valid when the suite runs.
        let _ = Metrics::from_env().expect("valid BJ_METRICS");
    }
}
