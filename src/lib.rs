//! # BlackJack — hard error detection with redundant threads on SMT
//!
//! Facade crate of the BlackJack reproduction (Schuchman & Vijaykumar,
//! DSN 2007). Re-exports the component crates and provides the
//! [`Experiment`] runner used by the examples, integration tests, and the
//! figure-regeneration harnesses.

pub use blackjack_faults as faults;
pub use blackjack_isa as isa;
pub use blackjack_mem as mem;
pub use blackjack_sim as sim;
pub use blackjack_workloads as workloads;

mod campaign;
pub mod envcfg;
mod experiment;
pub mod metrics;
pub mod snapshot;
pub mod telemetry;

pub use campaign::{
    Campaign, CampaignStats, CampaignTrace, JobTiming, Observed, ObserveOpts, ProgressHook,
    ProgressTick,
};
pub use envcfg::EnvError;
pub use experiment::{BenchmarkResult, Experiment, ExperimentResult, ModeResult};
pub use metrics::{Counter, Gauge, Metrics, MetricsRegistry};
pub use snapshot::{arming_schedule, ChainStats, SnapshotChain};
