//! # The campaign engine: deterministic simulation fan-out
//!
//! The paper's evaluation is embarrassingly parallel — 16 benchmarks × 4
//! modes for the figures, plus hundreds of independent single-fault
//! injection runs for the detection sweep. This module flattens every
//! unit of simulation work into a single job list executed by a
//! work-stealing worker pool: workers race on one atomic job index and
//! each claims the next unstarted job, so imbalanced job lengths (a
//! BlackJack run costs ~3× a Single run) self-level without any static
//! partitioning.
//!
//! **Determinism:** results are written into a slot per job and
//! reassembled in job order, so campaign output is bit-identical
//! regardless of worker count. The paper figures, the detection sweep,
//! and the ablations all produce the same tables at `BJ_THREADS=1` and
//! `BJ_THREADS=64`.
//!
//! Worker count defaults to the host's available parallelism and can be
//! overridden with the `BJ_THREADS` environment variable.
//!
//! ```
//! use blackjack::Campaign;
//!
//! let squares: Vec<u64> = Campaign::with_workers(4)
//!     .run((0..100u64).map(|i| move || i * i).collect());
//! assert_eq!(squares[7], 49);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Metrics, MetricsRegistry};

/// A worker pool executing a flat list of independent jobs.
///
/// Construct with [`Campaign::from_env`] (honours `BJ_THREADS`) or
/// [`Campaign::with_workers`]; run job lists with [`Campaign::run`].
#[derive(Debug, Clone)]
pub struct Campaign {
    workers: usize,
}

impl Campaign {
    /// A campaign sized from the environment: `BJ_THREADS` if set to a
    /// positive integer, otherwise the host's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError`](crate::envcfg::EnvError) when `BJ_THREADS`
    /// is set to `0` or to a non-numeric value — an explicit-but-broken
    /// override should stop the campaign, not silently fall back to a
    /// default worker count.
    pub fn from_env() -> Result<Campaign, crate::envcfg::EnvError> {
        let workers = match crate::envcfg::positive_from_env::<usize>("BJ_THREADS")? {
            Some(n) => n,
            None => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        };
        Ok(Campaign { workers })
    }

    /// [`Campaign::from_env`] for harness binaries: prints the error and
    /// exits with status 2 instead of returning it.
    pub fn from_env_or_exit() -> Campaign {
        Campaign::from_env().unwrap_or_else(|e| crate::envcfg::exit_invalid(&e))
    }

    /// A campaign with an explicit worker count (tests use this to avoid
    /// racing on the process environment).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(workers: usize) -> Campaign {
        assert!(workers > 0, "a campaign needs at least one worker");
        Campaign { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every job and returns the results **in job order**,
    /// regardless of which worker ran which job or in what order they
    /// finished.
    ///
    /// # Panics
    ///
    /// Propagates the first job panic after all workers have drained.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        // Single worker: run inline, no thread overhead (and exact
        // sequential semantics for debugging).
        if self.workers == 1 || n == 1 {
            return jobs.into_iter().map(|j| j()).collect();
        }

        let slots: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.workers.min(n);

        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // The shared index is the work-stealing heart: a
                    // worker that finishes early immediately claims the
                    // next unstarted job.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("each job claimed exactly once");
                    let out = job();
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index below n was executed")
            })
            .collect()
    }

    /// Two-phase campaign: build shared per-group state in parallel, then
    /// fan out jobs that borrow it read-only.
    ///
    /// `setups[g]` produces group `g`'s shared state (a program + golden
    /// run, a snapshot chain, …); each `(g, job)` in `jobs` then runs with
    /// `&` access to that state. Both phases go through [`Campaign::run`],
    /// so results come back in job order and are bit-identical for any
    /// worker count. The setup phase is a barrier — no job starts until
    /// every group's state exists — which is what lets jobs index any
    /// group, not just their own.
    ///
    /// Returns the group states alongside the job results — reports often
    /// need facts computed during setup (schedules, analyses).
    ///
    /// # Panics
    ///
    /// Panics if a job names a group index with no setup.
    pub fn run_staged<G, S, T, F>(&self, setups: Vec<S>, jobs: Vec<(usize, F)>) -> (Vec<G>, Vec<T>)
    where
        G: Send + Sync,
        S: FnOnce() -> G + Send,
        T: Send,
        F: FnOnce(&G) -> T + Send,
    {
        let groups = self.run(setups);
        let groups_ref = &groups;
        let results = self.run(
            jobs.into_iter()
                .map(|(g, f)| {
                    move || {
                        f(groups_ref.get(g).unwrap_or_else(|| {
                            panic!(
                                "job references group {g} but only {} setups ran",
                                groups_ref.len()
                            )
                        }))
                    }
                })
                .collect(),
        );
        (groups, results)
    }

    /// [`Campaign::run`] plus wall-clock timing, for throughput
    /// accounting.
    pub fn run_timed<T, F>(&self, jobs: Vec<F>) -> (Vec<T>, Duration)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let t0 = Instant::now();
        let out = self.run(jobs);
        (out, t0.elapsed())
    }

    /// [`Campaign::run`] plus per-job telemetry: which worker ran each
    /// job, how long the job waited in the queue, and how long it ran.
    ///
    /// Queue-wait is measured from campaign start to the moment a worker
    /// *claims* the job — with work-stealing there is no per-job enqueue
    /// time, so this is exactly the latency the shared-index discipline
    /// imposes on that job. Results (and timings) come back in job order,
    /// same determinism contract as [`Campaign::run`]; only the timing
    /// values themselves vary run to run.
    pub fn run_traced<T, F>(&self, jobs: Vec<F>) -> (Vec<T>, CampaignTrace)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let obs = self.run_observed(
            jobs.into_iter().map(|j| move |_: &mut Metrics| j()).collect(),
            ObserveOpts { timings: true, metrics: false, progress: None },
        );
        (obs.results, obs.trace.expect("timings were requested"))
    }

    /// The fully-observed fan-out: [`Campaign::run`]'s determinism
    /// contract plus, each opt-in:
    ///
    /// * **timings** — per-job scheduling records ([`CampaignTrace`]),
    /// * **metrics** — one [`MetricsRegistry`] shard per worker; each job
    ///   receives `&mut Metrics` (the worker's shard, or [`Metrics::Off`]
    ///   when metrics are off — the off path shares `run`'s zero
    ///   overhead). The engine itself records [`Counter::Jobs`] and the
    ///   job-latency histogram into each shard; jobs add their domain
    ///   counters — never config facts like the worker count, so shard
    ///   merges stay byte-identical across worker counts. Shards
    ///   come back in worker-index order; merging them (any order — the
    ///   algebra commutes) yields totals that are byte-identical for any
    ///   worker count.
    /// * **progress** — a wall-clock-cadence [`ProgressHook`] called from
    ///   whichever worker crosses the deadline at a job boundary, plus
    ///   one final call (with [`ProgressTick::done`]) when the last job
    ///   retires. Only timing fields of a tick vary run to run.
    pub fn run_observed<T, F>(&self, jobs: Vec<F>, opts: ObserveOpts) -> Observed<T>
    where
        T: Send,
        F: FnOnce(&mut Metrics) -> T + Send,
    {
        let n = jobs.len();
        let t0 = Instant::now();
        let workers = self.workers.min(n).max(1);
        let done = AtomicUsize::new(0);
        let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        // Next progress deadline, nanos since t0. Workers race on it with
        // CAS so each cadence interval emits exactly one tick.
        let deadline = AtomicU64::new(opts.progress.map_or(u64::MAX, |h| h.every_nanos()));

        let finish = |results: Vec<(T, JobTiming)>, shards: Vec<MetricsRegistry>| {
            let wall = t0.elapsed();
            if let Some(hook) = opts.progress {
                hook.emit(&ProgressTick {
                    jobs_done: done.load(Ordering::Relaxed),
                    jobs_total: n,
                    workers: self.workers,
                    done: true,
                    elapsed: wall,
                    eta: Some(Duration::ZERO),
                    busy: busy.iter().map(|b| Duration::from_nanos(b.load(Ordering::Relaxed))).collect(),
                });
            }
            let mut out = Vec::with_capacity(n);
            let mut timings = Vec::with_capacity(n);
            for (v, t) in results {
                out.push(v);
                timings.push(t);
            }
            Observed {
                results: out,
                trace: opts.timings.then_some(CampaignTrace {
                    workers: self.workers,
                    wall,
                    timings,
                }),
                shards,
            }
        };

        if n == 0 {
            return finish(Vec::new(), Vec::new());
        }
        if self.workers == 1 || n == 1 {
            // Inline path: everything runs on "worker 0" sequentially.
            let mut metrics = Metrics::when(opts.metrics);
            let mut results = Vec::with_capacity(n);
            for (i, job) in jobs.into_iter().enumerate() {
                let queue_wait = t0.elapsed();
                let jt0 = Instant::now();
                let out = job(&mut metrics);
                let run = jt0.elapsed();
                metrics.inc(Counter::Jobs);
                metrics.record_job_nanos(run.as_nanos() as u64);
                busy[0].fetch_add(run.as_nanos() as u64, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
                results.push((out, JobTiming { job: i, worker: 0, queue_wait, run }));
                if let Some(hook) = opts.progress {
                    hook.maybe_tick(t0, &deadline, &done, n, self.workers, &busy);
                }
            }
            let shards = metrics.into_registry().map(|r| vec![*r]).unwrap_or_default();
            return finish(results, shards);
        }

        let slots: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<(T, JobTiming)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let shards: Vec<Mutex<Option<MetricsRegistry>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        let (slots_ref, results_ref, next_ref) = (&slots, &results, &next);
        let (shards_ref, done_ref, busy_ref, deadline_ref) = (&shards, &done, &busy, &deadline);
        let opts_ref = &opts;
        thread::scope(|s| {
            for worker in 0..workers {
                s.spawn(move || {
                    let mut metrics = Metrics::when(opts_ref.metrics);
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let queue_wait = t0.elapsed();
                        let job = slots_ref[i]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("each job claimed exactly once");
                        let jt0 = Instant::now();
                        let out = job(&mut metrics);
                        let run = jt0.elapsed();
                        metrics.inc(Counter::Jobs);
                        metrics.record_job_nanos(run.as_nanos() as u64);
                        busy_ref[worker].fetch_add(run.as_nanos() as u64, Ordering::Relaxed);
                        done_ref.fetch_add(1, Ordering::Relaxed);
                        let timing = JobTiming { job: i, worker, queue_wait, run };
                        *results_ref[i].lock().expect("result slot poisoned") =
                            Some((out, timing));
                        if let Some(hook) = opts_ref.progress {
                            hook.maybe_tick(t0, deadline_ref, done_ref, n, self.workers, busy_ref);
                        }
                    }
                    if let Some(r) = metrics.into_registry() {
                        *shards_ref[worker].lock().expect("shard slot poisoned") = Some(*r);
                    }
                });
            }
        });

        let results: Vec<(T, JobTiming)> = results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index below n was executed")
            })
            .collect();
        let shards: Vec<MetricsRegistry> = shards
            .into_iter()
            .filter_map(|m| m.into_inner().expect("shard slot poisoned"))
            .collect();
        finish(results, shards)
    }
}

/// What [`Campaign::run_observed`] should observe.
#[derive(Clone, Copy, Default)]
pub struct ObserveOpts<'a> {
    /// Collect per-job scheduling timings ([`Observed::trace`]).
    pub timings: bool,
    /// Give each worker a [`MetricsRegistry`] shard ([`Observed::shards`]).
    pub metrics: bool,
    /// Emit live progress ticks on this hook's cadence.
    pub progress: Option<&'a ProgressHook<'a>>,
}

/// [`Campaign::run_observed`]'s bundle: results in job order, plus the
/// requested observations.
pub struct Observed<T> {
    /// Job results, in job order (same contract as [`Campaign::run`]).
    pub results: Vec<T>,
    /// Scheduling telemetry, when requested.
    pub trace: Option<CampaignTrace>,
    /// Per-worker metric shards in worker-index order, when requested
    /// (workers that ran no job still contribute their — near-empty —
    /// shard; with metrics off this is empty).
    pub shards: Vec<MetricsRegistry>,
}

/// A live-progress callback with a wall-clock cadence, for
/// [`Campaign::run_observed`]. The callback runs on whichever worker
/// crosses the deadline, so it must be cheap and `Sync` (the telemetry
/// [`ProgressMeter`](crate::telemetry::ProgressMeter) serializes through
/// its writer lock).
pub struct ProgressHook<'a> {
    every: Duration,
    emit: &'a (dyn Fn(&ProgressTick) + Sync),
}

impl<'a> ProgressHook<'a> {
    /// A hook emitting via `emit` every `every` of wall-clock (plus one
    /// final tick at campaign end).
    pub fn new(every: Duration, emit: &'a (dyn Fn(&ProgressTick) + Sync)) -> ProgressHook<'a> {
        ProgressHook { every, emit }
    }

    fn every_nanos(&self) -> u64 {
        u64::try_from(self.every.as_nanos()).unwrap_or(u64::MAX)
    }

    fn emit(&self, tick: &ProgressTick) {
        (self.emit)(tick);
    }

    /// Emits a mid-campaign tick if the cadence deadline has passed; the
    /// CAS guarantees one emitter per interval.
    fn maybe_tick(
        &self,
        t0: Instant,
        deadline: &AtomicU64,
        done: &AtomicUsize,
        total: usize,
        workers: usize,
        busy: &[AtomicU64],
    ) {
        let elapsed = t0.elapsed();
        let now = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let d = deadline.load(Ordering::Acquire);
        if now < d
            || deadline
                .compare_exchange(
                    d,
                    now.saturating_add(self.every_nanos()),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_err()
        {
            return;
        }
        let jobs_done = done.load(Ordering::Relaxed);
        let eta = (jobs_done > 0).then(|| {
            Duration::from_nanos(
                (now as u128 * (total - jobs_done) as u128 / jobs_done as u128) as u64,
            )
        });
        self.emit(&ProgressTick {
            jobs_done,
            jobs_total: total,
            workers,
            done: false,
            elapsed,
            eta,
            busy: busy.iter().map(|b| Duration::from_nanos(b.load(Ordering::Relaxed))).collect(),
        });
    }
}

/// One live-progress observation from the campaign engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressTick {
    /// Jobs retired so far.
    pub jobs_done: usize,
    /// Jobs submitted.
    pub jobs_total: usize,
    /// Campaign worker count.
    pub workers: usize,
    /// True for the single end-of-campaign tick (always emitted).
    pub done: bool,
    /// Wall-clock since campaign start.
    pub elapsed: Duration,
    /// Naive remaining-time estimate — `elapsed × remaining / done` —
    /// `None` before the first job retires.
    pub eta: Option<Duration>,
    /// Cumulative per-worker job-execution time.
    pub busy: Vec<Duration>,
}

/// One job's scheduling record from [`Campaign::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Job index in the submitted list.
    pub job: usize,
    /// Worker that executed it.
    pub worker: usize,
    /// Campaign start → claim: the queueing latency this job saw.
    pub queue_wait: Duration,
    /// Claim → completion: the job's own execution time.
    pub run: Duration,
}

/// Per-job scheduling telemetry for one campaign, in job order.
#[derive(Debug, Clone, Default)]
pub struct CampaignTrace {
    /// Workers the campaign was configured with.
    pub workers: usize,
    /// Campaign wall-clock.
    pub wall: Duration,
    /// One record per job, indexed like the submitted job list.
    pub timings: Vec<JobTiming>,
}

impl CampaignTrace {
    /// Total execution time attributed to each worker (index = worker).
    pub fn worker_busy(&self) -> Vec<Duration> {
        let mut busy = vec![Duration::ZERO; self.workers];
        for t in &self.timings {
            busy[t.worker] += t.run;
        }
        busy
    }

    /// Fraction of the campaign wall-clock each worker spent running
    /// jobs — the pool-imbalance observable (a healthy work-stealing
    /// campaign keeps these near-equal and near 1.0).
    pub fn busy_fractions(&self) -> Vec<f64> {
        let wall = self.wall.as_secs_f64();
        self.worker_busy()
            .iter()
            .map(|b| if wall == 0.0 { 0.0 } else { b.as_secs_f64() / wall })
            .collect()
    }
}

/// Aggregate throughput accounting for a campaign of simulator runs.
///
/// Built from the per-run [`SimStats`](blackjack_sim::SimStats) by
/// [`CampaignStats::tally`]; the headline metric is *simulated cycles per
/// wall-clock second across the whole campaign*, the number the
/// `bench_campaign` harness records in `BENCH_campaign.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Total simulated cycles across all jobs.
    pub sim_cycles: u64,
    /// Total architecturally committed instructions (leading contexts).
    pub committed: u64,
    /// Campaign wall-clock.
    pub wall: Duration,
}

impl CampaignStats {
    /// Accumulates one run's statistics.
    pub fn tally(&mut self, stats: &blackjack_sim::SimStats) {
        self.jobs += 1;
        self.sim_cycles += stats.cycles;
        self.committed += stats.committed[0];
    }

    /// Simulated cycles per wall-clock second for the whole campaign.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / secs
        }
    }

    /// Merges another campaign's tally into this one (wall-clock adds,
    /// which models sequential campaign phases).
    pub fn merge(&mut self, other: &CampaignStats) {
        self.jobs += other.jobs;
        self.sim_cycles += other.sim_cycles;
        self.committed += other.committed;
        self.wall += other.wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_job_order_any_worker_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for workers in [1, 2, 8, 32] {
            let jobs: Vec<_> = (0..97).map(|i| move || i * 3 + 1).collect();
            let got = Campaign::with_workers(workers).run(jobs);
            assert_eq!(got, expect, "{workers} workers");
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        let c = Campaign::with_workers(4);
        let none: Vec<u32> = c.run(Vec::<fn() -> u32>::new());
        assert!(none.is_empty());
        assert_eq!(c.run(vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn uneven_job_lengths_self_level() {
        // Long jobs first: a static split would serialize them on one
        // worker; the shared index lets idle workers steal the rest.
        let jobs: Vec<_> = (0..40u64)
            .map(|i| {
                move || {
                    let spins = if i < 4 { 200_000 } else { 1_000 };
                    let mut acc = i;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    (i, acc)
                }
            })
            .collect();
        let got = Campaign::with_workers(8).run(jobs);
        assert_eq!(got.len(), 40);
        for (slot, (i, _)) in got.iter().enumerate() {
            assert_eq!(slot as u64, *i, "result landed in the wrong slot");
        }
    }

    #[test]
    fn run_staged_shares_group_state_in_job_order() {
        for workers in [1, 4] {
            let setups: Vec<_> = (0..3u64).map(|g| move || g * 100).collect();
            let jobs: Vec<(usize, _)> =
                (0..12u64).map(|i| ((i % 3) as usize, move |base: &u64| base + i)).collect();
            let (groups, got) = Campaign::with_workers(workers).run_staged(setups, jobs);
            assert_eq!(groups, vec![0, 100, 200], "{workers} workers: setups in group order");
            let expect: Vec<u64> = (0..12).map(|i| (i % 3) * 100 + i).collect();
            assert_eq!(got, expect, "{workers} workers");
        }
    }

    #[test]
    fn workers_from_env_shape() {
        let c = Campaign::with_workers(3);
        assert_eq!(c.workers(), 3);
        // BJ_THREADS is either unset or set to something valid when the
        // suite runs; either way a campaign must materialize.
        assert!(Campaign::from_env().expect("valid BJ_THREADS").workers() >= 1);
    }

    #[test]
    fn run_traced_matches_run_and_accounts_every_job() {
        for workers in [1, 4] {
            let jobs: Vec<_> = (0..23u64).map(|i| move || i * i).collect();
            let (got, trace) = Campaign::with_workers(workers).run_traced(jobs);
            let expect: Vec<u64> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, expect, "{workers} workers");
            assert_eq!(trace.workers, workers);
            assert_eq!(trace.timings.len(), 23);
            for (i, t) in trace.timings.iter().enumerate() {
                assert_eq!(t.job, i, "timings come back in job order");
                assert!(t.worker < workers);
                assert!(t.queue_wait <= trace.wall);
            }
            // Every worker's busy time fits inside the campaign wall.
            let busy = trace.worker_busy();
            assert_eq!(busy.len(), workers);
            assert!(busy.iter().all(|b| *b <= trace.wall + Duration::from_millis(5)));
            assert_eq!(trace.busy_fractions().len(), workers);
        }
    }

    #[test]
    fn run_traced_empty_job_list() {
        let (out, trace) = Campaign::with_workers(2).run_traced(Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
        assert!(trace.timings.is_empty());
        assert!(trace.busy_fractions().iter().all(|f| *f == 0.0));
    }

    #[test]
    fn campaign_stats_tally_and_merge() {
        let mut a = CampaignStats::default();
        let mut s = blackjack_sim::SimStats { cycles: 100, ..Default::default() };
        s.committed[0] = 40;
        a.tally(&s);
        s.cycles = 50;
        s.committed[0] = 20;
        a.tally(&s);
        assert_eq!(a.jobs, 2);
        assert_eq!(a.sim_cycles, 150);
        assert_eq!(a.committed, 60);

        let mut b = CampaignStats {
            jobs: 1,
            sim_cycles: 850,
            committed: 300,
            wall: Duration::from_secs(1),
        };
        b.merge(&a);
        assert_eq!(b.jobs, 3);
        assert_eq!(b.sim_cycles, 1000);
        assert_eq!(b.committed, 360);
        assert_eq!(b.cycles_per_sec(), 1000.0);

        assert_eq!(CampaignStats::default().cycles_per_sec(), 0.0);
    }
}
