//! Structured campaign telemetry: the `BJ_TRACE` JSONL stream.
//!
//! When `BJ_TRACE=<path>` is set, the harnesses append one JSON object
//! per line to `<path>`. Each line carries a `"type"` discriminator:
//!
//! | type           | one per            | payload                                     |
//! |----------------|--------------------|---------------------------------------------|
//! | `meta`         | file               | schema version, emitting tool               |
//! | `campaign`     | campaign           | worker count, wall nanos, job count         |
//! | `job`          | job                | worker, queue-wait nanos, run nanos, label  |
//! | `run`          | simulator run      | [`SimStats::to_json`] + occupancy histograms|
//! | `heatmap`      | traced run         | per-`(class, way)` issue counts, both ctxs  |
//! | `flight_event` | flight-recorder ev | cycle, kind, uid, ctx, seq, pc, way, packet |
//! | `detection`    | detection event    | kind, cycle, seq, pc, ways                  |
//! | `progress`     | cadence tick (v2)  | jobs done/total, busy, ETA, exit tallies    |
//! | `phase`        | campaign (v2)      | wall nanos per campaign phase               |
//! | `metrics`      | campaign (v2)      | merged [`MetricsRegistry`], inlined         |
//!
//! Everything is hand-emitted and hand-parsed: the repo builds offline
//! with no serde, and the schema is flat enough that a
//! balanced-brace scanner ([`json_obj`]) plus typed field extractors
//! ([`json_u64`], [`json_str`], [`json_u64_array`]) are all `bj-trace`
//! needs. The emit path buffers through [`std::io::BufWriter`] and is
//! only ever constructed when `BJ_TRACE` is set, so the default
//! (untraced) harness path allocates nothing and writes nothing.
//!
//! **Schema v2 and the `nondet` contract.** Version 2 adds the three
//! observability records; every v1 record is emitted unchanged, and the
//! per-line parser is schema-agnostic, so v1 files still parse. Any
//! record carrying wall-clock values places them *after* a
//! `"nondet":[...]` marker listing their names — everything before the
//! marker is deterministic for a given workload and config, so
//! `sed 's/,"nondet":.*/}/'` (or [`strip_nondet`]) reduces a line to its
//! reproducible prefix. Verification scripts diff those prefixes across
//! runs with different worker counts.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use blackjack_sim::{DetectionEvent, FlightEvent, SimStats, TraceState, WayHeat};

use crate::campaign::{CampaignTrace, ProgressTick};
use crate::envcfg::{self, EnvError};
use crate::metrics::MetricsRegistry;

/// Telemetry schema version emitted in the `meta` line.
pub const SCHEMA_VERSION: u64 = 2;

/// A JSONL telemetry sink.
pub struct TraceWriter {
    out: std::io::BufWriter<std::fs::File>,
}

impl TraceWriter {
    /// Creates (truncating) the sink at `path` and writes the `meta`
    /// line identifying `tool`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &Path, tool: &str) -> std::io::Result<TraceWriter> {
        let file = std::fs::File::create(path)?;
        let mut w = TraceWriter { out: std::io::BufWriter::new(file) };
        w.line(&format!(
            "{{\"type\":\"meta\",\"schema\":{SCHEMA_VERSION},\"tool\":{}}}",
            json_string(tool)
        ));
        Ok(w)
    }

    /// Builds the sink from `BJ_TRACE`: `Ok(None)` when unset, the
    /// envcfg error when set but empty or unwritable.
    ///
    /// # Errors
    ///
    /// See [`envcfg::writable_path_from_env`]; file creation failures
    /// surface as [`EnvError::Unwritable`] too.
    pub fn from_env(tool: &str) -> Result<Option<TraceWriter>, EnvError> {
        let Some(path) = envcfg::writable_path_from_env("BJ_TRACE")? else {
            return Ok(None);
        };
        TraceWriter::create(&path, tool).map(Some).map_err(|e| EnvError::Unwritable {
            var: "BJ_TRACE",
            path: path.display().to_string(),
            reason: e.to_string(),
        })
    }

    /// [`TraceWriter::from_env`] for harness binaries: prints the error
    /// and exits with status 2 (same contract as `BJ_THREADS`).
    pub fn from_env_or_exit(tool: &str) -> Option<TraceWriter> {
        TraceWriter::from_env(tool).unwrap_or_else(|e| envcfg::exit_invalid(&e))
    }

    fn line(&mut self, s: &str) {
        // Telemetry must never take the harness down mid-campaign; the
        // final flush in `drop`/`flush` reports persistent disk trouble.
        let _ = writeln!(self.out, "{s}");
    }

    /// One `campaign` line plus one `job` line per job.
    pub fn emit_campaign(&mut self, trace: &CampaignTrace, labels: &[String]) {
        self.line(&format!(
            "{{\"type\":\"campaign\",\"workers\":{},\"wall_nanos\":{},\"jobs\":{}}}",
            trace.workers,
            trace.wall.as_nanos(),
            trace.timings.len()
        ));
        for t in &trace.timings {
            let label = labels.get(t.job).map(String::as_str).unwrap_or("");
            self.line(&format!(
                "{{\"type\":\"job\",\"job\":{},\"worker\":{},\"queue_wait_nanos\":{},\
                 \"run_nanos\":{},\"label\":{}}}",
                t.job,
                t.worker,
                t.queue_wait.as_nanos(),
                t.run.as_nanos(),
                json_string(label)
            ));
        }
    }

    /// One `run` line: headline counters plus (when traced) the
    /// occupancy histograms.
    pub fn emit_run(&mut self, label: &str, stats: &SimStats, trace: Option<&TraceState>) {
        let occ = trace
            .map(|t| format!(",\"occupancy\":{}", t.occupancy_json()))
            .unwrap_or_default();
        self.line(&format!(
            "{{\"type\":\"run\",\"label\":{},\"stats\":{}{occ}}}",
            json_string(label),
            stats.to_json()
        ));
    }

    /// One `heatmap` line: per-way issue counts for both contexts, with
    /// each way annotated by its FU class and instance.
    pub fn emit_heatmap(&mut self, label: &str, heat: &WayHeat) {
        let fu = heat.fu_counts();
        let mut classes = String::new();
        for way in 0..fu.total() {
            if way > 0 {
                classes.push(',');
            }
            let (t, idx) = fu.way_type(way);
            let _ = write!(classes, "{}", json_string(&format!("{t}{idx}")));
        }
        let fmt_counts = |c: &[u64]| {
            c.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
        };
        self.line(&format!(
            "{{\"type\":\"heatmap\",\"label\":{},\"ways\":[{classes}],\
             \"lead\":[{}],\"trail\":[{}]}}",
            json_string(label),
            fmt_counts(heat.of_ctx(0)),
            fmt_counts(heat.of_ctx(1)),
        ));
    }

    /// One `flight_event` line per recorder event, oldest first.
    pub fn emit_flight(&mut self, events: &[FlightEvent]) {
        for e in events {
            let way =
                if e.way == usize::MAX { "null".to_string() } else { e.way.to_string() };
            let packet =
                if e.packet == u64::MAX { "null".to_string() } else { e.packet.to_string() };
            let seq = if e.seq == u64::MAX { "null".to_string() } else { e.seq.to_string() };
            let uid = if e.uid == u64::MAX { "null".to_string() } else { e.uid.to_string() };
            self.line(&format!(
                "{{\"type\":\"flight_event\",\"cycle\":{},\"kind\":\"{}\",\"uid\":{uid},\
                 \"ctx\":{},\"seq\":{seq},\"pc\":{},\"way\":{way},\"packet\":{packet},\
                 \"filler\":{}}}",
                e.cycle,
                e.kind.name(),
                e.ctx,
                e.pc,
                e.filler
            ));
        }
    }

    /// One `detection` line.
    pub fn emit_detection(&mut self, ev: &DetectionEvent) {
        let opt = |v: Option<usize>| v.map_or("null".to_string(), |w| w.to_string());
        let fronts = ev
            .front_ways
            .map_or("null".to_string(), |(l, t)| format!("[{l},{t}]"));
        self.line(&format!(
            "{{\"type\":\"detection\",\"kind\":{},\"cycle\":{},\"seq\":{},\"pc\":{},\
             \"lead_back_way\":{},\"trail_back_way\":{},\"front_ways\":{fronts}}}",
            json_string(&format!("{:?}", ev.kind)),
            ev.cycle,
            ev.seq,
            ev.pc,
            opt(ev.lead_back_way),
            opt(ev.trail_back_way),
        ));
    }

    /// One `phase` line attributing campaign wall time. Every field but
    /// the discriminator is wall-clock, so the whole payload sits behind
    /// the `nondet` marker; stripping leaves `{"type":"phase"}`.
    pub fn emit_phase(&mut self, phases: &[(&'static str, u64)], wall_nanos: u64) {
        let mut names: Vec<String> =
            phases.iter().map(|&(n, _)| format!("\"{n}_nanos\"")).collect();
        names.push("\"wall_nanos\"".to_string());
        let fields: String =
            phases.iter().map(|&(n, v)| format!(",\"{n}_nanos\":{v}")).collect();
        self.line(&format!(
            "{{\"type\":\"phase\",\"nondet\":[{}]{fields},\"wall_nanos\":{wall_nanos}}}",
            names.join(",")
        ));
    }

    /// One `metrics` line: the merged registry's fields inlined at top
    /// level (not nested), so the registry's own `nondet` marker keeps
    /// the whole line brace-balanced after stripping.
    pub fn emit_metrics(&mut self, registry: &MetricsRegistry) {
        let body = registry.to_json();
        self.line(&format!("{{\"type\":\"metrics\",{}", &body[1..]));
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Live-progress emitter: owns the [`TraceWriter`] for a campaign's
/// duration, accumulates domain counters (runs, forks, early exits,
/// snapshot reuse) from worker threads via relaxed atomics, and turns
/// each [`ProgressTick`] from the campaign's
/// [`ProgressHook`](crate::campaign::ProgressHook) into one `progress`
/// line, flushed immediately so `bj-trace top --follow` sees it live.
///
/// Mid-campaign ticks are inherently racy (which jobs have retired when
/// is scheduling-dependent); the final tick — `"done":true`, emitted
/// unconditionally after the last job — is deterministic up to its
/// `nondet` suffix, and is what verification compares across runs.
pub struct ProgressMeter {
    writer: Mutex<TraceWriter>,
    runs: AtomicU64,
    forked_runs: AtomicU64,
    early_activation: AtomicU64,
    early_convergence: AtomicU64,
    early_watchdog: AtomicU64,
    snapshots_taken: AtomicU64,
    snapshots_refilled: AtomicU64,
}

impl ProgressMeter {
    /// Wraps `writer` for the campaign's duration.
    pub fn new(writer: TraceWriter) -> ProgressMeter {
        ProgressMeter {
            writer: Mutex::new(writer),
            runs: AtomicU64::new(0),
            forked_runs: AtomicU64::new(0),
            early_activation: AtomicU64::new(0),
            early_convergence: AtomicU64::new(0),
            early_watchdog: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(0),
            snapshots_refilled: AtomicU64::new(0),
        }
    }

    /// Hands the writer back for the post-campaign record families.
    pub fn into_writer(self) -> TraceWriter {
        self.writer.into_inner().expect("trace writer poisoned")
    }

    /// Runs the closure against the wrapped writer (for mid-campaign
    /// emission other than progress — rarely needed).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut TraceWriter) -> R) -> R {
        f(&mut self.writer.lock().expect("trace writer poisoned"))
    }

    /// Counts one simulator run; `forked` when it continued from a
    /// snapshot rather than a cold `Core::new`.
    pub fn note_run(&self, forked: bool) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        if forked {
            self.forked_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one activation-pruned injection (skipped without a run).
    pub fn note_early_activation(&self) {
        self.early_activation.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one convergence-sealed early exit.
    pub fn note_early_convergence(&self) {
        self.early_convergence.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one stall-watchdog early exit.
    pub fn note_early_watchdog(&self) {
        self.early_watchdog.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one snapshot chain's build accounting in.
    pub fn note_snapshots(&self, taken: u64, refilled: u64) {
        self.snapshots_taken.fetch_add(taken, Ordering::Relaxed);
        self.snapshots_refilled.fetch_add(refilled, Ordering::Relaxed);
    }

    /// Emits one `progress` line for `t`. Deterministic fields first,
    /// wall-clock fields behind the `nondet` marker.
    pub fn emit_tick(&self, t: &ProgressTick) {
        let (a, c, w) = (
            self.early_activation.load(Ordering::Relaxed),
            self.early_convergence.load(Ordering::Relaxed),
            self.early_watchdog.load(Ordering::Relaxed),
        );
        let eta = t
            .eta
            .map_or("null".to_string(), |d| d.as_nanos().to_string());
        let busy: Vec<String> =
            t.busy.iter().map(|d| d.as_nanos().to_string()).collect();
        let line = format!(
            "{{\"type\":\"progress\",\"jobs_done\":{},\"jobs_total\":{},\"workers\":{},\
             \"done\":{},\"runs\":{},\"forked_runs\":{},\
             \"early_exits\":{{\"activation\":{a},\"convergence\":{c},\"watchdog\":{w},\
             \"total\":{}}},\
             \"snapshots\":{{\"taken\":{},\"refilled\":{}}},\
             \"nondet\":[\"elapsed_nanos\",\"eta_nanos\",\"busy_nanos\"],\
             \"elapsed_nanos\":{},\"eta_nanos\":{eta},\"busy_nanos\":[{}]}}",
            t.jobs_done,
            t.jobs_total,
            t.workers,
            t.done,
            self.runs.load(Ordering::Relaxed),
            self.forked_runs.load(Ordering::Relaxed),
            a + c + w,
            self.snapshots_taken.load(Ordering::Relaxed),
            self.snapshots_refilled.load(Ordering::Relaxed),
            t.elapsed.as_nanos(),
            busy.join(","),
        );
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        writer.line(&line);
        // A follower tailing the file must see the tick now, not at the
        // next BufWriter spill.
        let _ = writer.flush();
    }
}

/// Reduces a telemetry line to its deterministic prefix: everything from
/// the `,"nondet":` marker on is replaced by the closing brace — the
/// programmatic twin of the `sed 's/,"nondet":.*/}/'` used in shell.
pub fn strip_nondet(line: &str) -> String {
    match line.find(",\"nondet\":") {
        Some(i) => format!("{}}}", &line[..i]),
        None => line.to_string(),
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------- parsing
//
// `bj-trace` reads the stream back with these minimal extractors. They
// assume the flat shapes this module emits (no nested objects under the
// keys being extracted, except where `json_obj` is used to cut a nested
// object out first).

/// Extracts the raw value text following `"key":` in `obj`, or `None`.
fn raw_value<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = obj.find(&needle)? + needle.len();
    Some(obj[start..].trim_start())
}

/// Reads an unsigned integer field. `null` and absent both yield `None`.
pub fn json_u64(obj: &str, key: &str) -> Option<u64> {
    let rest = raw_value(obj, key)?;
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads a string field (no unescaping beyond `\"` and `\\` — the
/// emitter only produces those for harness labels).
pub fn json_str(obj: &str, key: &str) -> Option<String> {
    let rest = raw_value(obj, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(esc) = chars.next() {
                    out.push(esc);
                }
            }
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Reads a `[1,2,3]`-style array of unsigned integers.
pub fn json_u64_array(obj: &str, key: &str) -> Option<Vec<u64>> {
    let rest = raw_value(obj, key)?;
    let rest = rest.strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|v| v.trim().parse().ok()).collect()
}

/// Reads a `["a","b"]`-style array of strings.
pub fn json_str_array(obj: &str, key: &str) -> Option<Vec<String>> {
    let rest = raw_value(obj, key)?;
    let rest = rest.strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|v| {
            let v = v.trim();
            v.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
        })
        .collect()
}

/// Cuts the balanced-brace object following `"key":` out of `obj`.
pub fn json_obj<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let rest = raw_value(obj, key)?;
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

// ------------------------------------------------------------ round-trip

/// A parsed JSON value from a telemetry line.
///
/// Number, boolean, and `null` tokens keep their raw text
/// ([`JsonValue::Raw`]) so [`emit_value`] reproduces them byte-for-byte
/// — the round-trip property the fuzzer's telemetry tests pin down.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A number, boolean, or `null`, as raw token text.
    Raw(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

/// Parses one telemetry JSONL line into its field list, or `None` when
/// the line is not a single well-formed flat-ish JSON object (the only
/// shape the emitters produce). Field order is preserved.
pub fn parse_line(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut p = JsonParser { s: line.as_bytes(), i: 0 };
    p.skip_ws();
    let JsonValue::Obj(fields) = p.value()? else { return None };
    p.skip_ws();
    if p.i != p.s.len() {
        return None; // trailing garbage
    }
    Some(fields)
}

/// Re-emits a parsed line ([`parse_line`]'s output) as JSON text.
/// `emit_line(&parse_line(l)?) == l` for every line this module emits.
pub fn emit_line(fields: &[(String, JsonValue)]) -> String {
    emit_value(&JsonValue::Obj(fields.to_vec()))
}

/// Re-emits one parsed value as JSON text.
pub fn emit_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Raw(t) => t.clone(),
        JsonValue::Str(s) => json_string(s),
        JsonValue::Array(items) => {
            let body: Vec<String> = items.iter().map(emit_value).collect();
            format!("[{}]", body.join(","))
        }
        JsonValue::Obj(fields) => {
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), emit_value(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
    }
}

struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.s.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.s.get(self.i)? {
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.s.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Some(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let JsonValue::Str(key) = self.string()? else { return None };
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.s.get(self.i)? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Some(JsonValue::Obj(fields));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.s.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Some(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.s.get(self.i)? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Some(JsonValue::Array(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => self.string(),
            _ => {
                // Raw scalar: number, true/false, null — everything up to
                // a structural delimiter, kept verbatim.
                let start = self.i;
                while self
                    .s
                    .get(self.i)
                    .is_some_and(|c| !matches!(c, b',' | b'}' | b']') && !c.is_ascii_whitespace())
                {
                    self.i += 1;
                }
                if self.i == start {
                    return None;
                }
                Some(JsonValue::Raw(
                    String::from_utf8_lossy(&self.s[start..self.i]).into_owned(),
                ))
            }
        }
    }

    fn string(&mut self) -> Option<JsonValue> {
        if self.s.get(self.i) != Some(&b'"') {
            return None;
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.s.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(JsonValue::Str(out));
                }
                b'\\' => {
                    self.i += 1;
                    match self.s.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self.s.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                &c => {
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self.s.get(self.i..self.i + ch_len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.i += ch_len;
                }
            }
        }
    }
}

// --------------------------------------------------------------- summary

/// Aggregated job-latency and worker-utilization numbers from a
/// campaign's `job` lines — what `bj-trace` prints for a campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignSummary {
    /// Jobs observed.
    pub jobs: u64,
    /// Campaign workers (from the `campaign` line).
    pub workers: u64,
    /// Campaign wall-clock nanoseconds.
    pub wall_nanos: u64,
    /// p50 of per-job run nanoseconds (nearest-rank).
    pub p50_nanos: u64,
    /// p95 of per-job run nanoseconds (nearest-rank).
    pub p95_nanos: u64,
    /// Slowest job's run nanoseconds.
    pub max_nanos: u64,
    /// Slowest job's label.
    pub max_label: String,
    /// Per-worker busy fraction (run time / campaign wall).
    pub busy: Vec<f64>,
    /// Largest observed queue wait in nanoseconds.
    pub max_queue_wait_nanos: u64,
}

/// Nearest-rank percentile of an unsorted sample (p in 0..=100).
pub fn percentile_nanos(samples: &mut [u64], p: u64) -> u64 {
    samples.sort_unstable();
    sorted_percentile(samples, p)
}

/// Nearest-rank percentile of an already-sorted sample — callers taking
/// several percentiles of one sample sort once and index repeatedly.
pub fn sorted_percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as u64 * p).div_ceil(100)).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Builds the summary from raw JSONL lines (any non-`campaign`/`job`
/// lines are ignored).
pub fn summarize_campaign(lines: &[&str]) -> Option<CampaignSummary> {
    let mut s = CampaignSummary::default();
    let mut runs: Vec<u64> = Vec::new();
    let mut per_worker: Vec<u64> = Vec::new();
    let mut seen_campaign = false;
    for line in lines {
        match json_str(line, "type").as_deref() {
            Some("campaign") => {
                seen_campaign = true;
                s.workers = json_u64(line, "workers").unwrap_or(0);
                s.wall_nanos = json_u64(line, "wall_nanos").unwrap_or(0);
            }
            Some("job") => {
                let run = json_u64(line, "run_nanos").unwrap_or(0);
                let worker = json_u64(line, "worker").unwrap_or(0) as usize;
                let wait = json_u64(line, "queue_wait_nanos").unwrap_or(0);
                s.jobs += 1;
                runs.push(run);
                if per_worker.len() <= worker {
                    per_worker.resize(worker + 1, 0);
                }
                per_worker[worker] += run;
                s.max_queue_wait_nanos = s.max_queue_wait_nanos.max(wait);
                if run >= s.max_nanos {
                    s.max_nanos = run;
                    s.max_label = json_str(line, "label").unwrap_or_default();
                }
            }
            _ => {}
        }
    }
    if !seen_campaign && runs.is_empty() {
        return None;
    }
    runs.sort_unstable();
    s.p50_nanos = sorted_percentile(&runs, 50);
    s.p95_nanos = sorted_percentile(&runs, 95);
    s.busy = per_worker
        .iter()
        .map(|&b| if s.wall_nanos == 0 { 0.0 } else { b as f64 / s.wall_nanos as f64 })
        .collect();
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
    }

    #[test]
    fn field_extractors_roundtrip() {
        let line = "{\"type\":\"job\",\"job\":3,\"worker\":1,\"run_nanos\":12345,\
                    \"label\":\"matmul/BlackJack\",\"arr\":[1,2,3],\
                    \"nested\":{\"a\":{\"b\":7},\"c\":1}}";
        assert_eq!(json_str(line, "type").as_deref(), Some("job"));
        assert_eq!(json_u64(line, "job"), Some(3));
        assert_eq!(json_u64(line, "run_nanos"), Some(12345));
        assert_eq!(json_str(line, "label").as_deref(), Some("matmul/BlackJack"));
        assert_eq!(json_u64_array(line, "arr"), Some(vec![1, 2, 3]));
        assert_eq!(json_obj(line, "nested"), Some("{\"a\":{\"b\":7},\"c\":1}"));
        assert_eq!(json_u64(line, "missing"), None);
        assert_eq!(json_str_array("{\"w\":[\"a\",\"b\"]}", "w"), Some(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nanos(&mut v.clone(), 50), 50);
        assert_eq!(percentile_nanos(&mut v.clone(), 95), 95);
        assert_eq!(percentile_nanos(&mut v, 100), 100);
        assert_eq!(percentile_nanos(&mut [], 50), 0);
        // The sorted-input fast path agrees with the sorting wrapper.
        let sorted: Vec<u64> = (1..=100).collect();
        for p in [0, 1, 50, 95, 100] {
            assert_eq!(sorted_percentile(&sorted, p), percentile_nanos(&mut sorted.clone(), p));
        }
        assert_eq!(sorted_percentile(&[], 50), 0);
        assert_eq!(percentile_nanos(&mut [7], 50), 7);
    }

    #[test]
    fn summarize_campaign_from_lines() {
        let lines = vec![
            "{\"type\":\"meta\",\"schema\":1,\"tool\":\"t\"}",
            "{\"type\":\"campaign\",\"workers\":2,\"wall_nanos\":1000,\"jobs\":3}",
            "{\"type\":\"job\",\"job\":0,\"worker\":0,\"queue_wait_nanos\":10,\"run_nanos\":400,\"label\":\"a\"}",
            "{\"type\":\"job\",\"job\":1,\"worker\":1,\"queue_wait_nanos\":20,\"run_nanos\":600,\"label\":\"b\"}",
            "{\"type\":\"job\",\"job\":2,\"worker\":0,\"queue_wait_nanos\":410,\"run_nanos\":500,\"label\":\"c\"}",
        ];
        let s = summarize_campaign(&lines).unwrap();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.workers, 2);
        assert_eq!(s.p50_nanos, 500);
        assert_eq!(s.p95_nanos, 600);
        assert_eq!(s.max_nanos, 600);
        assert_eq!(s.max_label, "b");
        assert_eq!(s.max_queue_wait_nanos, 410);
        assert_eq!(s.busy, vec![0.9, 0.6]);
        assert_eq!(summarize_campaign(&["{\"type\":\"meta\"}"]), None);
    }

    #[test]
    fn progress_record_roundtrips_and_strips_to_deterministic_prefix() {
        let path = std::env::temp_dir().join("bj_telemetry_progress_test.jsonl");
        let meter = ProgressMeter::new(TraceWriter::create(&path, "unit-test").unwrap());
        meter.note_run(true);
        meter.note_run(false);
        meter.note_early_activation();
        meter.note_early_watchdog();
        meter.note_snapshots(3, 14);
        meter.emit_tick(&ProgressTick {
            jobs_done: 2,
            jobs_total: 8,
            workers: 4,
            done: false,
            elapsed: std::time::Duration::from_nanos(5_000),
            eta: Some(std::time::Duration::from_nanos(15_000)),
            busy: vec![
                std::time::Duration::from_nanos(4_000),
                std::time::Duration::from_nanos(3_000),
            ],
        });
        drop(meter.into_writer());
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().nth(1).unwrap();
        // Byte-exact round-trip through the generic parser.
        assert_eq!(emit_line(&parse_line(line).unwrap()), line);
        // Typed extraction of both halves.
        assert_eq!(json_str(line, "type").as_deref(), Some("progress"));
        assert_eq!(json_u64(line, "jobs_done"), Some(2));
        assert_eq!(json_u64(line, "runs"), Some(2));
        assert_eq!(json_u64(line, "forked_runs"), Some(1));
        let exits = json_obj(line, "early_exits").unwrap();
        assert_eq!(json_u64(exits, "activation"), Some(1));
        assert_eq!(json_u64(exits, "watchdog"), Some(1));
        assert_eq!(json_u64(exits, "total"), Some(2));
        let snaps = json_obj(line, "snapshots").unwrap();
        assert_eq!(json_u64(snaps, "refilled"), Some(14));
        assert_eq!(json_u64(line, "elapsed_nanos"), Some(5_000));
        assert_eq!(json_u64_array(line, "busy_nanos"), Some(vec![4_000, 3_000]));
        // The strip contract: deterministic prefix, balanced, no timing.
        let stripped = strip_nondet(line);
        assert!(stripped.ends_with("\"refilled\":14}}"), "{stripped}");
        assert!(parse_line(&stripped).is_some(), "stripped line stays well-formed");
        assert!(!stripped.contains("elapsed_nanos"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn phase_and_metrics_records_strip_balanced() {
        let path = std::env::temp_dir().join("bj_telemetry_phase_test.jsonl");
        {
            let mut w = TraceWriter::create(&path, "unit-test").unwrap();
            let mut r = MetricsRegistry::new();
            r.inc(crate::metrics::Counter::Jobs);
            r.add(crate::metrics::Counter::SimulateNanos, 1234);
            w.emit_phase(&r.phase_nanos(), 9999);
            w.emit_metrics(&r);
            w.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let phase = text.lines().nth(1).unwrap();
        let metrics = text.lines().nth(2).unwrap();
        assert_eq!(emit_line(&parse_line(phase).unwrap()), phase);
        assert_eq!(emit_line(&parse_line(metrics).unwrap()), metrics);
        assert_eq!(json_u64(phase, "simulate_nanos"), Some(1234));
        assert_eq!(json_u64(phase, "wall_nanos"), Some(9999));
        // Phase is all wall-clock: stripping leaves only the type tag.
        assert_eq!(strip_nondet(phase), "{\"type\":\"phase\"}");
        // Metrics strip to the registry's deterministic prefix, inlined.
        let stripped = strip_nondet(metrics);
        assert!(parse_line(&stripped).is_some(), "{stripped}");
        assert_eq!(json_obj(&stripped, "counters").map(|c| json_u64(c, "jobs")), Some(Some(1)));
        assert!(!stripped.contains("simulate_nanos"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn v1_lines_still_parse_under_v2() {
        // Pinned verbatim from a schema-1 capture: the parser is
        // per-line and schema-agnostic, so a v2 reader must take these
        // byte-for-byte.
        let v1 = [
            "{\"type\":\"meta\",\"schema\":1,\"tool\":\"ext_detection\"}",
            "{\"type\":\"campaign\",\"workers\":2,\"wall_nanos\":1000,\"jobs\":3}",
            "{\"type\":\"job\",\"job\":0,\"worker\":0,\"queue_wait_nanos\":10,\"run_nanos\":400,\"label\":\"gzip/BlackJack\"}",
            "{\"type\":\"detection\",\"kind\":\"BackendMismatch\",\"cycle\":70,\"seq\":9,\"pc\":40,\"lead_back_way\":4,\"trail_back_way\":0,\"front_ways\":null}",
        ];
        for line in v1 {
            assert_eq!(emit_line(&parse_line(line).unwrap()), line);
            // No nondet marker → stripping is the identity.
            assert_eq!(strip_nondet(line), line);
        }
        assert!(summarize_campaign(v1.as_ref()).is_some());
    }

    #[test]
    fn writer_emits_schema_valid_lines() {
        let path = std::env::temp_dir().join("bj_telemetry_writer_test.jsonl");
        {
            let mut w = TraceWriter::create(&path, "unit-test").unwrap();
            let (_, trace) =
                Campaign::with_workers(1).run_traced((0..3u64).map(|i| move || i).collect());
            w.emit_campaign(&trace, &["a".into(), "b".into(), "c".into()]);
            let stats = blackjack_sim::SimStats {
                cycles: 10,
                wall_nanos: 5,
                agg_wall_nanos: 5,
                ..Default::default()
            };
            w.emit_run("a", &stats, None);
            w.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(json_str(lines[0], "type").as_deref(), Some("meta"));
        assert_eq!(json_u64(lines[0], "schema"), Some(SCHEMA_VERSION));
        assert_eq!(json_str(lines[1], "type").as_deref(), Some("campaign"));
        assert_eq!(json_u64(lines[1], "jobs"), Some(3));
        // 1 meta + 1 campaign + 3 jobs + 1 run.
        assert_eq!(lines.len(), 6);
        let run = lines[5];
        assert_eq!(json_str(run, "type").as_deref(), Some("run"));
        let stats_obj = json_obj(run, "stats").unwrap();
        assert_eq!(json_u64(stats_obj, "cycles"), Some(10));
        // Every line is a balanced object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        let _ = std::fs::remove_file(path);
    }
}
