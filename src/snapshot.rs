//! # Fork-at-injection: sharing the fault-free prefix of injection runs
//!
//! Every injection run in a campaign sharing a (benchmark, config, mode)
//! triple is identical up to its fault's arming cycle — the hardware is
//! healthy until the wear-out defect develops. Replaying that common
//! prefix from cycle 0 for every fault site dominates campaign wall time.
//! This module simulates the prefix *once*: a fault-free core is driven
//! forward, pausing one cycle before each distinct arming point to take a
//! [`CoreSnapshot`], and each injection job is handed a cheap
//! [`SnapshotChain::fork`] instead of a cold `Core::new`.
//!
//! **Why the fork is exact.** Every fault hook in the core is inert
//! before the plan's arming cycle, so a faulted run's state at cycle
//! `arm - 1` equals the fault-free state at `arm - 1` — which is exactly
//! what the snapshot holds. `Core::run` compares against absolute cycle
//! numbers, so the continuation simulates the same cycles the cold run
//! would. The only difference is wall-clock telemetry
//! (`SimStats::wall_nanos`), which no report includes.
//!
//! The chain is *incremental*: snapshots are taken in ascending arm order
//! from one continuously advancing core, so building `k` snapshots costs
//! one fault-free prefix, not `k`.

use blackjack_faults::FaultPlan;
use blackjack_sim::{Core, CoreSnapshot};

/// Arming cycles for `sites` injection runs over a workload whose
/// fault-free run lasts `fault_free_cycles` cycles: evenly spaced across
/// the *late half* of the run, `arm_i = N/2 + i·N/(2·sites)`.
///
/// The late-half bias models wear-out (a defect present from power-on is
/// what manufacturing test catches; the paper's target is faults that
/// develop in the field) and maximizes the shared prefix. Arms are
/// strictly within `[N/2, N)`, ascending, never 0 — site `i` keeps the
/// `i`-th slot, so a site list and its schedule index identically.
pub fn arming_schedule(fault_free_cycles: u64, sites: usize) -> Vec<u64> {
    let n = fault_free_cycles;
    (0..sites as u64).map(|i| (n / 2 + i * n / (2 * sites.max(1) as u64)).max(1)).collect()
}

/// Snapshots of one fault-free run, taken one cycle before each distinct
/// arming point, ready to mint per-site injection cores.
pub struct SnapshotChain {
    /// `(arm_cycle, snapshot at arm_cycle - 1)`, ascending by arm.
    snaps: Vec<(u64, CoreSnapshot)>,
}

impl SnapshotChain {
    /// Builds the chain by driving `core` (which must be fault-free)
    /// forward once, pausing at `arm - 1` for every distinct cycle in
    /// `arms`. Duplicate and unsorted arms are fine — the chain stores
    /// each distinct arm once, in ascending order.
    ///
    /// An arm past the run's completion still gets a snapshot (of the
    /// completed state): forking it reproduces the cold run in which the
    /// fault never fires.
    pub fn build(mut core: Core, arms: &[u64]) -> SnapshotChain {
        let mut distinct: Vec<u64> = arms.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut snaps = Vec::with_capacity(distinct.len());
        for arm in distinct {
            // Incremental: continues from the previous pause, never from
            // cycle 0. `run` is a no-op once the core is done.
            core.run(arm.saturating_sub(1));
            snaps.push((arm, core.snapshot()));
        }
        SnapshotChain { snaps }
    }

    /// A core continuing from the snapshot for `arm` under `plan` — the
    /// per-site injection fork. `plan` must be armed at `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` was not in the arms the chain was built with, or
    /// if `plan.arm_cycle() != arm`.
    pub fn fork(&self, arm: u64, plan: FaultPlan) -> Core {
        assert_eq!(plan.arm_cycle(), arm, "plan must be armed at the requested snapshot");
        let i = self
            .snaps
            .binary_search_by_key(&arm, |&(a, _)| a)
            .unwrap_or_else(|_| panic!("no snapshot for arming cycle {arm}"));
        self.snaps[i].1.fork(plan)
    }

    /// Number of distinct snapshots held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True if the chain holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The distinct arming cycles, ascending.
    pub fn arms(&self) -> Vec<u64> {
        self.snaps.iter().map(|&(a, _)| a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackjack_faults::{FaultSite, HardFault};
    use blackjack_sim::{CoreConfig, Mode};
    use blackjack_workloads::{build, Benchmark};

    #[test]
    fn schedule_is_late_ascending_and_indexable() {
        let arms = arming_schedule(10_000, 8);
        assert_eq!(arms.len(), 8);
        assert_eq!(arms[0], 5_000);
        for w in arms.windows(2) {
            assert!(w[0] <= w[1], "schedule must ascend");
        }
        assert!(*arms.last().unwrap() < 10_000, "arms stay inside the run");
        // Degenerate inputs stay usable.
        assert_eq!(arming_schedule(10, 0), Vec::<u64>::new());
        assert!(arming_schedule(0, 3).iter().all(|&a| a == 1), "arms never hit cycle 0");
    }

    #[test]
    fn chain_dedups_and_forks_exactly() {
        let prog = build(Benchmark::Gzip, 1);
        let cfg = CoreConfig::with_mode(Mode::Srt);

        // Fault-free length for a meaningful schedule.
        let mut probe = Core::new(cfg.clone(), &prog, FaultPlan::new());
        assert!(probe.run(10_000_000).completed());
        let n = probe.cycle();

        let arms = vec![n / 2, n / 2, n * 3 / 4];
        let chain = SnapshotChain::build(Core::new(cfg.clone(), &prog, FaultPlan::new()), &arms);
        assert_eq!(chain.len(), 2, "duplicate arms collapse");
        assert_eq!(chain.arms(), vec![n / 2, n * 3 / 4]);

        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        for &arm in &[n / 2, n * 3 / 4] {
            let plan = FaultPlan::single(fault).arm_at(arm);
            let mut forked = chain.fork(arm, plan.clone());
            let forked_out = forked.run(10_000_000);
            let mut cold = Core::new(cfg.clone(), &prog, plan);
            let cold_out = cold.run(10_000_000);
            assert_eq!(forked_out, cold_out, "arm {arm}: outcome must match cold run");
            assert_eq!(forked.cycle(), cold.cycle(), "arm {arm}: cycle count must match");
            assert_eq!(
                forked.mem().first_difference(cold.mem()),
                None,
                "arm {arm}: memory must match"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no snapshot for arming cycle")]
    fn fork_of_unknown_arm_panics() {
        let prog = build(Benchmark::Gzip, 1);
        let chain = SnapshotChain::build(
            Core::new(CoreConfig::with_mode(Mode::Single), &prog, FaultPlan::new()),
            &[100],
        );
        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        chain.fork(200, FaultPlan::single(fault).arm_at(200));
    }
}
