//! # Fork-at-injection: sharing the fault-free prefix of injection runs
//!
//! Every injection run in a campaign sharing a (benchmark, config, mode)
//! triple is identical up to its fault's arming cycle — the hardware is
//! healthy until the wear-out defect develops. Replaying that common
//! prefix from cycle 0 for every fault site dominates campaign wall time.
//! This module simulates the prefix *once*: a fault-free core is driven
//! forward, pausing one cycle before each distinct arming point to take a
//! [`CoreSnapshot`], and each injection job is handed a cheap
//! [`SnapshotChain::fork`] instead of a cold `Core::new`.
//!
//! **Why the fork is exact.** Every fault hook in the core is inert
//! before the plan's arming cycle, so a faulted run's state at cycle
//! `arm - 1` equals the fault-free state at `arm - 1` — which is exactly
//! what the snapshot holds. `Core::run` compares against absolute cycle
//! numbers, so the continuation simulates the same cycles the cold run
//! would. The only difference is wall-clock telemetry
//! (`SimStats::wall_nanos`), which no report includes.
//!
//! The chain is *incremental*: snapshots are taken in ascending arm order
//! from one continuously advancing core, so building `k` snapshots costs
//! one fault-free prefix, not `k`.

//! Two chain-building strategies exist. [`SnapshotChain::build`] pauses
//! exactly one cycle before each known arming point (the *exact* chain:
//! forks resume with zero catch-up). [`SnapshotChain::build_periodic`]
//! snapshots every `interval` cycles in a single pass to completion
//! without knowing the arms in advance — the early-exit campaign path
//! uses it to make one instrumented reference run do triple duty (cycle
//! count, site-usage schedule, snapshots); forks then catch up at most
//! `interval - 1` fault-free cycles via [`SnapshotChain::fork_catchup`],
//! which is exact for the same reason the fork itself is.

use blackjack_faults::FaultPlan;
use blackjack_sim::{Core, CoreSnapshot};

/// Arming cycles for `sites` injection runs over a workload whose
/// fault-free run lasts `fault_free_cycles` cycles: evenly spaced across
/// the *late half* of the run, `arm_i = N/2 + i·N/(2·sites)`.
///
/// The late-half bias models wear-out (a defect present from power-on is
/// what manufacturing test catches; the paper's target is faults that
/// develop in the field) and maximizes the shared prefix. Arms are
/// strictly within `[N/2, N)`, ascending, never 0 — site `i` keeps the
/// `i`-th slot, so a site list and its schedule index identically.
pub fn arming_schedule(fault_free_cycles: u64, sites: usize) -> Vec<u64> {
    let n = fault_free_cycles;
    (0..sites as u64).map(|i| (n / 2 + i * n / (2 * sites.max(1) as u64)).max(1)).collect()
}

/// Snapshots of one fault-free run, taken one cycle before each distinct
/// arming point, ready to mint per-site injection cores.
pub struct SnapshotChain {
    /// `(arm_cycle, snapshot at arm_cycle - 1)`, ascending by arm.
    /// Boxed: `Core` is ~3 KB inline, and the periodic builder's sliding
    /// retention compacts this vector every snapshot — through a `Box`
    /// that's a 16-byte move per element instead of a deep memmove.
    snaps: Vec<(u64, Box<CoreSnapshot>)>,
    stats: ChainStats,
}

/// Lifetime accounting of a [`SnapshotChain`]'s build. Always on — the
/// counters tick once per *snapshot*, not per cycle, so the cost is
/// unmeasurable — and read by the campaign metrics registry when
/// `BJ_METRICS` is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Snapshots taken from a fresh allocation.
    pub taken: u64,
    /// Snapshots taken by refilling a retired spare in place
    /// (allocation-free; the periodic builder's steady state).
    pub refilled: u64,
    /// Snapshots retired behind the sliding horizon (or thinned when the
    /// interval doubled).
    pub retired: u64,
    /// High-water mark of simultaneously retained snapshots.
    pub peak_retained: u64,
}

impl SnapshotChain {
    /// Builds the chain by driving `core` (which must be fault-free)
    /// forward once, pausing at `arm - 1` for every distinct cycle in
    /// `arms`. Duplicate and unsorted arms are fine — the chain stores
    /// each distinct arm once, in ascending order.
    ///
    /// An arm past the run's completion still gets a snapshot (of the
    /// completed state): forking it reproduces the cold run in which the
    /// fault never fires.
    pub fn build(mut core: Core, arms: &[u64]) -> SnapshotChain {
        let mut distinct: Vec<u64> = arms.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut snaps = Vec::with_capacity(distinct.len());
        for arm in distinct {
            // Incremental: continues from the previous pause, never from
            // cycle 0. `run` is a no-op once the core is done.
            core.run(arm.saturating_sub(1));
            snaps.push((arm, Box::new(core.snapshot())));
        }
        let stats = ChainStats { taken: snaps.len() as u64, peak_retained: snaps.len() as u64, ..ChainStats::default() };
        SnapshotChain { snaps, stats }
    }

    /// Builds a chain in one fault-free pass to *completion*, snapshotting
    /// every `interval` cycles, with no advance knowledge of the arming
    /// points — pair with [`SnapshotChain::fork_catchup`]. Returns the
    /// chain and the completed core (whose cycle count is the arming
    /// schedule's denominator, and whose site-usage tracker — if the
    /// caller enabled one — holds the early-exit activation schedule).
    ///
    /// Because arms always land in the late half of the run
    /// ([`arming_schedule`]), snapshots that fall behind the advancing
    /// `cycle/2 - interval` horizon are dropped as the build progresses,
    /// and the interval doubles (thinning the chain) if the retained set
    /// grows past an internal bound — memory stays bounded for any run
    /// length while every possible arm keeps a donor snapshot at most
    /// `interval` cycles behind it.
    ///
    /// `expected_insts` — the run's final architectural instruction
    /// count, when the caller knows it (campaigns learn it from the
    /// golden functional run, whose `icount` is bit-equal to the lead
    /// thread's final commit count) — lets the builder skip pauses that
    /// provably cannot serve any arm. At most `width` instructions
    /// commit per cycle, so at every pause
    /// `N >= cycle + (expected_insts - committed) / width`; arms land in
    /// `[N/2, N)`, so a pause at cycle `c` with `c + interval < lb/2` is
    /// more than `interval` behind every possible arm and the *next*
    /// pause is still at or before `arm - 1`. Skipping it loses no
    /// donor — it only trims the dead early-run snapshots the sliding
    /// horizon would have retired anyway.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, the core does not complete within
    /// `max_cycles` (reference passes must be fault-free and halting),
    /// or the completed pass commits a different instruction count than
    /// `expected_insts` claims (a wrong bound could have skipped a
    /// needed donor, so it fails loudly here instead).
    pub fn build_periodic(
        mut core: Core,
        interval: u64,
        max_cycles: u64,
        expected_insts: Option<u64>,
    ) -> (SnapshotChain, Core) {
        assert!(interval > 0, "snapshot interval must be positive");
        const MAX_RETAINED: usize = 96;
        let mut interval = interval;
        // Snapshots the sliding horizon retires go here and are refreshed
        // in place ([`CoreSnapshot::refill_from`]) for the next pause:
        // past the warm-up the builder takes snapshots without touching
        // the allocator, which is most of its overhead over a plain
        // reference run.
        let mut spare: Vec<Box<CoreSnapshot>> = Vec::new();
        let mut stats = ChainStats { taken: 1, peak_retained: 1, ..ChainStats::default() };
        let mut snaps: Vec<(u64, Box<CoreSnapshot>)> =
            vec![(core.cycle(), Box::new(core.snapshot()))];
        while !core.finished() {
            let target = core.cycle() + interval;
            assert!(
                core.run(target.min(max_cycles)).completed() || core.cycle() < max_cycles,
                "reference pass must complete within {max_cycles} cycles"
            );
            if let Some(insts) = expected_insts {
                let remaining = insts.saturating_sub(core.stats().committed[0]);
                let lower_bound = core.cycle() + remaining / core.config().width as u64;
                if core.cycle() + interval < lower_bound / 2 {
                    continue;
                }
            }
            let snap = match spare.pop() {
                Some(mut s) => {
                    s.refill_from(&core);
                    stats.refilled += 1;
                    s
                }
                None => {
                    stats.taken += 1;
                    Box::new(core.snapshot())
                }
            };
            snaps.push((core.cycle(), snap));
            // The run so far is a lower bound on its final length N, and
            // arms are >= N/2, so anything behind cycle/2 - interval can
            // no longer be the nearest donor for any arm.
            let horizon = (core.cycle() / 2).saturating_sub(interval);
            let cut = snaps.partition_point(|&(c, _)| c < horizon);
            stats.retired += cut as u64;
            spare.extend(snaps.drain(..cut).map(|(_, s)| s));
            if snaps.len() > MAX_RETAINED {
                interval *= 2;
                let iv = interval;
                let kept = std::mem::take(&mut snaps);
                for (c, s) in kept {
                    if c % iv == 0 {
                        snaps.push((c, s));
                    } else {
                        stats.retired += 1;
                        spare.push(s);
                    }
                }
            }
            stats.peak_retained = stats.peak_retained.max(snaps.len() as u64);
        }
        if let Some(insts) = expected_insts {
            assert_eq!(
                core.stats().committed[0],
                insts,
                "expected instruction count must match the reference pass \
                 (a wrong bound could have skipped a needed donor snapshot)"
            );
        }
        (SnapshotChain { snaps, stats }, core)
    }

    /// A core continuing from the snapshot for `arm` under `plan` — the
    /// per-site injection fork. `plan` must be armed at `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` was not in the arms the chain was built with, or
    /// if `plan.arm_cycle() != arm`.
    pub fn fork(&self, arm: u64, plan: FaultPlan) -> Core {
        assert_eq!(plan.arm_cycle(), arm, "plan must be armed at the requested snapshot");
        let i = self
            .snaps
            .binary_search_by_key(&arm, |&(a, _)| a)
            .unwrap_or_else(|_| panic!("no snapshot for arming cycle {arm}"));
        self.snaps[i].1.fork(plan)
    }

    /// Like [`SnapshotChain::fork`], but tolerant of arms the chain never
    /// paused at: restores the nearest snapshot at or before `arm - 1`,
    /// catches up the remaining fault-free cycles, then installs `plan`.
    /// Exact for the same reason the plain fork is — every caught-up
    /// cycle precedes the arming point, where the hooks are inert.
    ///
    /// # Panics
    ///
    /// Panics if `plan.arm_cycle() != arm` or no snapshot exists at or
    /// before `arm - 1` (retention only ever drops snapshots that no
    /// *scheduled* arm can need; an out-of-schedule arm can trip this).
    pub fn fork_catchup(&self, arm: u64, plan: FaultPlan) -> Core {
        assert_eq!(plan.arm_cycle(), arm, "plan must be armed at the requested fork point");
        let target = arm.saturating_sub(1);
        let i = self.snaps.partition_point(|(_, s)| s.cycle() <= target);
        assert!(i > 0, "no snapshot at or before cycle {target} for arming cycle {arm}");
        let mut core = self.snaps[i - 1].1.restore();
        // The donor of an early-exit chain carries the reference pass's
        // site-usage tracker; the fork doesn't need it (set_plan would
        // drop it anyway) and catch-up shouldn't pay for the recording.
        core.take_site_usage();
        core.run(target);
        core.set_plan(plan);
        core
    }

    /// The chain's build-time accounting.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// Fault-free cycles a [`SnapshotChain::fork_catchup`] of `arm` will
    /// replay: the gap between `arm - 1` and its donor snapshot. Lets
    /// callers record catch-up cost without changing the fork signature.
    ///
    /// # Panics
    ///
    /// Panics under the same condition as `fork_catchup`: no snapshot at
    /// or before `arm - 1`.
    pub fn catchup_cycles(&self, arm: u64) -> u64 {
        let target = arm.saturating_sub(1);
        let i = self.snaps.partition_point(|(_, s)| s.cycle() <= target);
        assert!(i > 0, "no snapshot at or before cycle {target} for arming cycle {arm}");
        target - self.snaps[i - 1].1.cycle()
    }

    /// Number of distinct snapshots held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True if the chain holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The distinct arming cycles, ascending.
    pub fn arms(&self) -> Vec<u64> {
        self.snaps.iter().map(|&(a, _)| a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackjack_faults::{FaultSite, HardFault};
    use blackjack_sim::{CoreConfig, Mode};
    use blackjack_workloads::{build, Benchmark};

    #[test]
    fn schedule_is_late_ascending_and_indexable() {
        let arms = arming_schedule(10_000, 8);
        assert_eq!(arms.len(), 8);
        assert_eq!(arms[0], 5_000);
        for w in arms.windows(2) {
            assert!(w[0] <= w[1], "schedule must ascend");
        }
        assert!(*arms.last().unwrap() < 10_000, "arms stay inside the run");
        // Degenerate inputs stay usable.
        assert_eq!(arming_schedule(10, 0), Vec::<u64>::new());
        assert!(arming_schedule(0, 3).iter().all(|&a| a == 1), "arms never hit cycle 0");
    }

    #[test]
    fn chain_dedups_and_forks_exactly() {
        let prog = build(Benchmark::Gzip, 1);
        let cfg = CoreConfig::with_mode(Mode::Srt);

        // Fault-free length for a meaningful schedule.
        let mut probe = Core::new(cfg.clone(), &prog, FaultPlan::new());
        assert!(probe.run(10_000_000).completed());
        let n = probe.cycle();

        let arms = vec![n / 2, n / 2, n * 3 / 4];
        let chain = SnapshotChain::build(Core::new(cfg.clone(), &prog, FaultPlan::new()), &arms);
        assert_eq!(chain.len(), 2, "duplicate arms collapse");
        assert_eq!(chain.arms(), vec![n / 2, n * 3 / 4]);

        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        for &arm in &[n / 2, n * 3 / 4] {
            let plan = FaultPlan::single(fault).arm_at(arm);
            let mut forked = chain.fork(arm, plan.clone());
            let forked_out = forked.run(10_000_000);
            let mut cold = Core::new(cfg.clone(), &prog, plan);
            let cold_out = cold.run(10_000_000);
            assert_eq!(forked_out, cold_out, "arm {arm}: outcome must match cold run");
            assert_eq!(forked.cycle(), cold.cycle(), "arm {arm}: cycle count must match");
            assert_eq!(
                forked.mem().first_difference(cold.mem()),
                None,
                "arm {arm}: memory must match"
            );
        }
    }

    #[test]
    fn periodic_chain_forks_exactly_from_any_arm() {
        let prog = build(Benchmark::Gzip, 1);
        let cfg = CoreConfig::with_mode(Mode::Srt);

        let (chain, reference) = SnapshotChain::build_periodic(
            Core::new(cfg.clone(), &prog, FaultPlan::new()),
            1024,
            10_000_000,
            None,
        );
        assert!(reference.finished(), "reference pass runs to completion");
        let n = reference.cycle();
        assert!(!chain.is_empty());
        // Sliding retention: nothing older than the final horizon
        // survives, so memory does not scale with the full run length.
        for &c in &chain.arms() {
            assert!(c + 1024 >= n / 2 || c + 2048 >= n / 2, "snapshot at {c} is behind the horizon");
        }

        // Arms the schedule would actually produce — including ones no
        // chain pause landed on — fork exactly.
        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        for &arm in &[n / 2, n / 2 + 777, n * 3 / 4 + 1, n - 1] {
            let plan = FaultPlan::single(fault).arm_at(arm);
            let mut forked = chain.fork_catchup(arm, plan.clone());
            let forked_out = forked.run(10_000_000);
            let mut cold = Core::new(cfg.clone(), &prog, plan);
            let cold_out = cold.run(10_000_000);
            assert_eq!(forked_out, cold_out, "arm {arm}: outcome must match cold run");
            assert_eq!(forked.cycle(), cold.cycle(), "arm {arm}: cycle count must match");
            assert_eq!(
                forked.mem().first_difference(cold.mem()),
                None,
                "arm {arm}: memory must match"
            );
        }
    }

    #[test]
    fn hinted_periodic_chain_skips_dead_prefix_and_forks_exactly() {
        let prog = build(Benchmark::Gzip, 1);
        let cfg = CoreConfig::with_mode(Mode::Srt);
        let mut golden = blackjack_isa::Interp::new(&prog);
        golden.run(50_000_000).expect("golden run completes");

        let (chain, reference) = SnapshotChain::build_periodic(
            Core::new(cfg.clone(), &prog, FaultPlan::new()),
            1024,
            10_000_000,
            Some(golden.icount()),
        );
        let n = reference.cycle();
        // Every take the bound skips is one the sliding horizon would
        // have retired anyway (skipped means c < lb/2 - interval <=
        // N/2 - interval, which is behind the final horizon), so the
        // finished chain is identical to the unhinted build's.
        let (plain, _) = SnapshotChain::build_periodic(
            Core::new(cfg.clone(), &prog, FaultPlan::new()),
            1024,
            10_000_000,
            None,
        );
        assert_eq!(chain.arms(), plain.arms(), "hint must not change the finished chain");

        // Every schedulable arm still forks exactly.
        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        for &arm in &[n / 2, n / 2 + 777, n * 3 / 4 + 1, n - 1] {
            let plan = FaultPlan::single(fault).arm_at(arm);
            let mut forked = chain.fork_catchup(arm, plan.clone());
            let forked_out = forked.run(10_000_000);
            let mut cold = Core::new(cfg.clone(), &prog, plan);
            let cold_out = cold.run(10_000_000);
            assert_eq!(forked_out, cold_out, "arm {arm}: outcome must match cold run");
            assert_eq!(forked.cycle(), cold.cycle(), "arm {arm}: cycle count must match");
        }
    }

    #[test]
    #[should_panic(expected = "expected instruction count must match")]
    fn wrong_instruction_hint_fails_loudly() {
        let prog = build(Benchmark::Gzip, 1);
        let core = Core::new(CoreConfig::with_mode(Mode::Srt), &prog, FaultPlan::new());
        let _ = SnapshotChain::build_periodic(core, 1024, 10_000_000, Some(7));
    }

    #[test]
    fn catchup_fork_works_on_exact_chains_too() {
        // The exact chain stores (arm, snapshot at arm-1); fork_catchup
        // must find the donor by snapshot cycle and replay the one
        // missing cycle.
        let prog = build(Benchmark::Gzip, 1);
        let cfg = CoreConfig::with_mode(Mode::Srt);
        let mut probe = Core::new(cfg.clone(), &prog, FaultPlan::new());
        assert!(probe.run(10_000_000).completed());
        let n = probe.cycle();

        let chain = SnapshotChain::build(Core::new(cfg.clone(), &prog, FaultPlan::new()), &[n / 2]);
        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        let plan = FaultPlan::single(fault).arm_at(n / 2);
        let mut a = chain.fork(n / 2, plan.clone());
        let mut b = chain.fork_catchup(n / 2, plan);
        assert_eq!(a.run(10_000_000), b.run(10_000_000));
        assert_eq!(a.cycle(), b.cycle());
        assert_eq!(a.mem().first_difference(b.mem()), None);
    }

    #[test]
    #[should_panic(expected = "no snapshot for arming cycle")]
    fn fork_of_unknown_arm_panics() {
        let prog = build(Benchmark::Gzip, 1);
        let chain = SnapshotChain::build(
            Core::new(CoreConfig::with_mode(Mode::Single), &prog, FaultPlan::new()),
            &[100],
        );
        let fault = HardFault::stuck_bit(FaultSite::Backend { way: 0 }, 3);
        chain.fork(200, FaultPlan::single(fault).arm_at(200));
    }
}
