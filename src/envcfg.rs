//! Validated environment-variable configuration.
//!
//! The harnesses are steered by a handful of environment variables
//! (`BJ_THREADS`, `BJ_SCALE`, `BJ_PRUNE`, `BJ_TRACE`, `BJ_TRACE_DEPTH`,
//! `BJ_FUZZ_SEED`, `BJ_FUZZ_ITERS`, `BJ_CALL_DEPTH`, `BJ_METRICS`,
//! `BJ_PROGRESS_SECS`, `BJ_FAULT_KINDS`, `BJ_ECC`). Historically a
//! typo like
//! `BJ_THREADS=eight` or `BJ_SCALE=0` was silently swallowed (falling
//! back to a default) or surfaced as a panic deep inside a workload
//! builder. This module centralizes parsing: every variable is either
//! unset, valid, or a clear [`EnvError`] naming the variable and the
//! offending value.

use std::fmt;
use std::str::FromStr;

/// A malformed environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The value does not parse as a number of the expected type.
    NotANumber {
        /// Variable name.
        var: &'static str,
        /// The raw value found.
        value: String,
    },
    /// The value parsed but is zero where a positive number is required.
    Zero {
        /// Variable name.
        var: &'static str,
    },
    /// The value is not a recognized boolean flag.
    NotAFlag {
        /// Variable name.
        var: &'static str,
        /// The raw value found.
        value: String,
    },
    /// A path variable was set to an empty (or all-whitespace) value.
    EmptyPath {
        /// Variable name.
        var: &'static str,
    },
    /// A path variable points somewhere that cannot be opened for
    /// writing.
    Unwritable {
        /// Variable name.
        var: &'static str,
        /// The offending path.
        path: String,
        /// The OS error that rejected it.
        reason: String,
    },
    /// A fault-kind list entry is not part of the fault-universe grammar.
    UnknownKind {
        /// Variable name.
        var: &'static str,
        /// The offending entry (not the whole list).
        value: String,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::NotANumber { var, value } => {
                write!(f, "{var}={value:?} is not a valid positive integer")
            }
            EnvError::Zero { var } => {
                write!(f, "{var}=0 is invalid: the value must be at least 1")
            }
            EnvError::NotAFlag { var, value } => write!(
                f,
                "{var}={value:?} is not a valid flag (use 0/1, true/false, on/off)"
            ),
            EnvError::EmptyPath { var } => {
                write!(f, "{var} is set but empty: provide a writable file path or unset it")
            }
            EnvError::Unwritable { var, path, reason } => {
                write!(f, "{var}={path:?} is not writable: {reason}")
            }
            EnvError::UnknownKind { var, value } => write!(
                f,
                "{var}: {value:?} is not a fault kind (use hard, transient, or \
                 intermittent[:PERIOD:ON])"
            ),
        }
    }
}

impl std::error::Error for EnvError {}

/// Parses `raw` as a positive (non-zero) integer for variable `var`.
///
/// # Errors
///
/// [`EnvError::NotANumber`] when `raw` does not parse,
/// [`EnvError::Zero`] when it parses to zero.
pub fn parse_positive<T>(var: &'static str, raw: &str) -> Result<T, EnvError>
where
    T: FromStr + PartialEq + Default,
{
    let v: T = raw.trim().parse().map_err(|_| EnvError::NotANumber {
        var,
        value: raw.to_string(),
    })?;
    if v == T::default() {
        return Err(EnvError::Zero { var });
    }
    Ok(v)
}

/// Reads `var` from the environment as a positive integer.
///
/// Returns `Ok(None)` when the variable is unset or empty.
///
/// # Errors
///
/// Propagates [`parse_positive`]'s errors for set, non-empty values.
pub fn positive_from_env<T>(var: &'static str) -> Result<Option<T>, EnvError>
where
    T: FromStr + PartialEq + Default,
{
    match std::env::var(var) {
        Ok(raw) if !raw.trim().is_empty() => parse_positive(var, &raw).map(Some),
        _ => Ok(None),
    }
}

/// Parses `raw` as a `u64` seed, accepting decimal or `0x`-prefixed hex
/// (case-insensitive prefix and digits). Unlike [`parse_positive`], zero
/// is a valid seed.
///
/// # Errors
///
/// [`EnvError::NotANumber`] when `raw` parses as neither form.
pub fn parse_seed(var: &'static str, raw: &str) -> Result<u64, EnvError> {
    let s = raw.trim();
    let parsed = if let Some(hex) =
        s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| EnvError::NotANumber { var, value: raw.to_string() })
}

/// Reads `var` from the environment as a seed ([`parse_seed`] syntax).
///
/// Returns `Ok(None)` when the variable is unset or empty.
///
/// # Errors
///
/// Propagates [`parse_seed`]'s error for set, non-empty values.
pub fn seed_from_env(var: &'static str) -> Result<Option<u64>, EnvError> {
    match std::env::var(var) {
        Ok(raw) if !raw.trim().is_empty() => parse_seed(var, &raw).map(Some),
        _ => Ok(None),
    }
}

/// Parses `raw` as a boolean flag: `1`/`true`/`on`/`yes` or
/// `0`/`false`/`off`/`no` (case-insensitive).
///
/// # Errors
///
/// [`EnvError::NotAFlag`] for anything else.
pub fn parse_flag(var: &'static str, raw: &str) -> Result<bool, EnvError> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err(EnvError::NotAFlag { var, value: raw.to_string() }),
    }
}

/// Reads a boolean flag from the environment, with a default for the
/// unset/empty case.
///
/// # Errors
///
/// Propagates [`parse_flag`]'s error for set, non-empty values.
pub fn flag_from_env(var: &'static str, default: bool) -> Result<bool, EnvError> {
    match std::env::var(var) {
        Ok(raw) if !raw.trim().is_empty() => parse_flag(var, &raw),
        _ => Ok(default),
    }
}

/// Reads the `BJ_SNAPSHOT` flag: whether injection campaigns share the
/// fault-free prefix through snapshot forks (default) or replay every run
/// from cycle 0. The two paths produce byte-identical reports; the flag
/// exists so the equivalence is checkable and the old path benchmarkable.
///
/// # Errors
///
/// [`EnvError::NotAFlag`] for set, non-empty, non-flag values.
pub fn snapshot_from_env() -> Result<bool, EnvError> {
    flag_from_env("BJ_SNAPSHOT", true)
}

/// Reads the `BJ_EARLYEXIT` flag: whether injection runs may stop the
/// moment their verdict is decided (default) — skipping provably-dead
/// fault sites, sealing benign verdicts at reconvergence, and cutting
/// stuck runs short with a stall watchdog — or must run to their natural
/// end. Both settings produce byte-identical reports; the flag exists so
/// the equivalence is checkable and the full-run path benchmarkable.
///
/// # Errors
///
/// [`EnvError::NotAFlag`] for set, non-empty, non-flag values.
pub fn earlyexit_from_env() -> Result<bool, EnvError> {
    flag_from_env("BJ_EARLYEXIT", true)
}

/// Default no-progress window (cycles) for the early-exit stall
/// watchdog — generous against the longest natural commit gaps seen in
/// the campaign workloads (hundreds of cycles) while still orders of
/// magnitude below the campaign cycle budget.
pub const DEFAULT_STALL_CYCLES: u64 = 25_000;

/// Reads `BJ_STALL_CYCLES`: the early-exit watchdog's no-progress window
/// in cycles ([`DEFAULT_STALL_CYCLES`] when unset). Zero is rejected — a
/// zero window would declare every run stuck on its first idle cycle.
///
/// # Errors
///
/// [`EnvError::NotANumber`] / [`EnvError::Zero`] per [`parse_positive`].
pub fn stall_cycles_from_env() -> Result<u64, EnvError> {
    Ok(positive_from_env::<u64>("BJ_STALL_CYCLES")?.unwrap_or(DEFAULT_STALL_CYCLES))
}

/// Reads `var` from the environment as a path that must be writable
/// (used by `BJ_TRACE`).
///
/// Returns `Ok(None)` when the variable is unset. A set-but-empty value
/// is rejected rather than treated as unset: an empty `BJ_TRACE` is
/// almost always a broken shell expansion, and silently dropping the
/// telemetry the user asked for is worse than stopping. Writability is
/// probed by opening the file in append mode (creating it if absent), so
/// a bad directory or permission surfaces here, before any simulation
/// work is done.
///
/// # Errors
///
/// [`EnvError::EmptyPath`] for set-but-empty values,
/// [`EnvError::Unwritable`] when the open probe fails.
pub fn writable_path_from_env(
    var: &'static str,
) -> Result<Option<std::path::PathBuf>, EnvError> {
    let Ok(raw) = std::env::var(var) else { return Ok(None) };
    if raw.trim().is_empty() {
        return Err(EnvError::EmptyPath { var });
    }
    let path = std::path::PathBuf::from(raw);
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| EnvError::Unwritable {
            var,
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
    Ok(Some(path))
}

/// Default call depth for the fuzz generator's call trees: `main` plus
/// one level of helpers — deep enough to exercise call/return machinery
/// (RAS push/pop, return resolution) without dominating the program.
pub const DEFAULT_CALL_DEPTH: usize = 2;

/// Reads `BJ_CALL_DEPTH`: how many function levels the fuzz generator
/// emits (`1` = `main` only, no calls; [`DEFAULT_CALL_DEPTH`] when
/// unset). Zero is rejected — a program with no functions at all is not
/// generable — as are non-numeric values, matching the
/// `BJ_THREADS`/`BJ_SCALE` grammar.
///
/// # Errors
///
/// [`EnvError::NotANumber`] / [`EnvError::Zero`] per [`parse_positive`].
pub fn call_depth_from_env() -> Result<usize, EnvError> {
    Ok(positive_from_env::<usize>("BJ_CALL_DEPTH")?.unwrap_or(DEFAULT_CALL_DEPTH))
}

/// Reads the `BJ_METRICS` flag: whether campaigns record the typed
/// metrics registry (`metrics::MetricsRegistry`) while they run. Default
/// off — the registry is the observability layer's opt-in, and the
/// metrics-off path must stay the zero-overhead hot path.
///
/// # Errors
///
/// [`EnvError::NotAFlag`] for set, non-empty, non-flag values.
pub fn metrics_from_env() -> Result<bool, EnvError> {
    flag_from_env("BJ_METRICS", false)
}

/// Reads `BJ_PROGRESS_SECS`: the wall-clock cadence (seconds) of live
/// `progress` telemetry records during a campaign. `Ok(None)` when unset
/// (no progress streaming); zero is rejected — a zero cadence would emit
/// a record at every job boundary and swamp the stream — as are
/// non-numeric values, matching the `BJ_THREADS`/`BJ_SCALE` grammar.
///
/// # Errors
///
/// [`EnvError::NotANumber`] / [`EnvError::Zero`] per [`parse_positive`].
pub fn progress_secs_from_env() -> Result<Option<u64>, EnvError> {
    positive_from_env::<u64>("BJ_PROGRESS_SECS")
}

/// Default duty-cycle window for an `intermittent` fault kind given
/// without explicit parameters: broken for the first
/// [`DEFAULT_INTERMITTENT_ON`] cycles of every 64-cycle window —
/// bursty enough to dodge a single check yet dense enough that every
/// campaign workload crosses many active windows.
pub const DEFAULT_INTERMITTENT_PERIOD: u64 = 64;

/// Active cycles per default intermittent window.
pub const DEFAULT_INTERMITTENT_ON: u64 = 8;

/// Parses one fault-kind entry: `hard`, `transient`, `intermittent`
/// (default 8-of-64 duty cycle), or `intermittent:PERIOD:ON` with
/// `1 <= ON <= PERIOD`.
///
/// # Errors
///
/// [`EnvError::UnknownKind`] for anything else.
pub fn parse_fault_kind(
    var: &'static str,
    raw: &str,
) -> Result<crate::faults::FaultKind, EnvError> {
    use crate::faults::FaultKind;
    let bad = || EnvError::UnknownKind { var, value: raw.trim().to_string() };
    let parts: Vec<&str> = raw.trim().split(':').collect();
    match (parts[0], parts.len()) {
        ("hard", 1) => Ok(FaultKind::Hard),
        ("transient", 1) => Ok(FaultKind::Transient),
        ("intermittent", 1) => Ok(FaultKind::Intermittent {
            period: DEFAULT_INTERMITTENT_PERIOD,
            on: DEFAULT_INTERMITTENT_ON,
        }),
        ("intermittent", 3) => {
            let period: u64 = parts[1].parse().map_err(|_| bad())?;
            let on: u64 = parts[2].parse().map_err(|_| bad())?;
            if period >= 1 && (1..=period).contains(&on) {
                Ok(FaultKind::Intermittent { period, on })
            } else {
                Err(bad())
            }
        }
        _ => Err(bad()),
    }
}

/// Parses `raw` as a comma-separated fault-kind list (the `BJ_FAULT_KINDS`
/// grammar). Entries may repeat; an empty list is rejected.
///
/// # Errors
///
/// [`EnvError::UnknownKind`] naming the first bad entry.
pub fn parse_fault_kinds(
    var: &'static str,
    raw: &str,
) -> Result<Vec<crate::faults::FaultKind>, EnvError> {
    let kinds: Vec<_> = raw
        .split(',')
        .map(|e| parse_fault_kind(var, e))
        .collect::<Result<_, _>>()?;
    if kinds.is_empty() {
        return Err(EnvError::UnknownKind { var, value: raw.to_string() });
    }
    Ok(kinds)
}

/// Reads `BJ_FAULT_KINDS`: which temporal fault models the injection
/// campaigns sweep, as a comma-separated list (`hard`, `transient`,
/// `intermittent[:PERIOD:ON]`). Unset/empty defaults to `[hard]` — the
/// original wear-out campaign, whose report is the byte-stability
/// contract.
///
/// # Errors
///
/// [`EnvError::UnknownKind`] per [`parse_fault_kinds`].
pub fn fault_kinds_from_env() -> Result<Vec<crate::faults::FaultKind>, EnvError> {
    match std::env::var("BJ_FAULT_KINDS") {
        Ok(raw) if !raw.trim().is_empty() => parse_fault_kinds("BJ_FAULT_KINDS", &raw),
        _ => Ok(vec![crate::faults::FaultKind::Hard]),
    }
}

/// Reads the `BJ_ECC` flag: whether the LVQ payload RAM carries the
/// SEC-DED check-bit layer. Default off — the legacy hard-fault report
/// is byte-stable only on the unprotected datapath, and ECC is the
/// fault-universe extension's opt-in.
///
/// # Errors
///
/// [`EnvError::NotAFlag`] for set, non-empty, non-flag values.
pub fn ecc_from_env() -> Result<bool, EnvError> {
    flag_from_env("BJ_ECC", false)
}

/// Prints `err` to stderr (prefixed with the program's purpose) and
/// exits with status 2 — the shared failure path for harness binaries,
/// which have no caller to propagate to.
pub fn exit_invalid(err: &EnvError) -> ! {
    eprintln!("error: {err}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_normal_values() {
        assert_eq!(parse_positive::<usize>("BJ_THREADS", "8"), Ok(8));
        assert_eq!(parse_positive::<u32>("BJ_SCALE", " 3 "), Ok(3));
        assert_eq!(parse_positive::<u32>("BJ_SCALE", "1"), Ok(1));
    }

    #[test]
    fn zero_rejected_with_named_variable() {
        let err = parse_positive::<u32>("BJ_SCALE", "0").unwrap_err();
        assert_eq!(err, EnvError::Zero { var: "BJ_SCALE" });
        assert!(err.to_string().contains("BJ_SCALE=0"));
    }

    #[test]
    fn non_numeric_rejected_with_value_echoed() {
        for bad in ["eight", "-1", "3.5", "1e3", "0x10"] {
            let err = parse_positive::<usize>("BJ_THREADS", bad).unwrap_err();
            assert_eq!(
                err,
                EnvError::NotANumber { var: "BJ_THREADS", value: bad.to_string() },
                "{bad}"
            );
            assert!(err.to_string().contains(bad), "{bad}");
        }
    }

    #[test]
    fn seeds_accept_decimal_and_hex_including_zero() {
        assert_eq!(parse_seed("BJ_FUZZ_SEED", "12345"), Ok(12345));
        assert_eq!(parse_seed("BJ_FUZZ_SEED", "0"), Ok(0));
        assert_eq!(parse_seed("BJ_FUZZ_SEED", " 0xB1AC "), Ok(0xB1AC));
        assert_eq!(parse_seed("BJ_FUZZ_SEED", "0Xdead_beef".replace('_', "").as_str()), Ok(0xdead_beef));
        for bad in ["", "seed", "0x", "0xZZ", "-1", "1.5"] {
            let err = parse_seed("BJ_FUZZ_SEED", bad).unwrap_err();
            assert_eq!(
                err,
                EnvError::NotANumber { var: "BJ_FUZZ_SEED", value: bad.to_string() },
                "{bad:?}"
            );
        }
        assert_eq!(seed_from_env("BJ_ENVCFG_TEST_UNSET"), Ok(None));
    }

    #[test]
    fn flags_parse_both_polarities() {
        for yes in ["1", "true", "ON", "Yes"] {
            assert_eq!(parse_flag("BJ_PRUNE", yes), Ok(true), "{yes}");
        }
        for no in ["0", "false", "off", "NO"] {
            assert_eq!(parse_flag("BJ_PRUNE", no), Ok(false), "{no}");
        }
        assert_eq!(
            parse_flag("BJ_PRUNE", "maybe"),
            Err(EnvError::NotAFlag { var: "BJ_PRUNE", value: "maybe".to_string() })
        );
    }

    #[test]
    fn path_validation_rejects_unwritable_and_accepts_tempfile() {
        // Unset → None (a name no harness sets, to avoid env races).
        assert_eq!(writable_path_from_env("BJ_ENVCFG_TEST_UNSET"), Ok(None));

        // Unwritable: a path under a directory that does not exist.
        std::env::set_var("BJ_ENVCFG_TEST_BADPATH", "/nonexistent-dir-bj/trace.jsonl");
        let err = writable_path_from_env("BJ_ENVCFG_TEST_BADPATH").unwrap_err();
        match &err {
            EnvError::Unwritable { var, path, .. } => {
                assert_eq!(*var, "BJ_ENVCFG_TEST_BADPATH");
                assert!(path.contains("nonexistent-dir-bj"));
            }
            other => panic!("expected Unwritable, got {other:?}"),
        }
        assert!(err.to_string().contains("not writable"));
        std::env::remove_var("BJ_ENVCFG_TEST_BADPATH");

        // Writable: a file in the target dir.
        let ok = std::env::temp_dir().join("bj_envcfg_test_trace.jsonl");
        std::env::set_var("BJ_ENVCFG_TEST_GOODPATH", &ok);
        assert_eq!(
            writable_path_from_env("BJ_ENVCFG_TEST_GOODPATH"),
            Ok(Some(ok.clone()))
        );
        std::env::remove_var("BJ_ENVCFG_TEST_GOODPATH");
        let _ = std::fs::remove_file(ok);
    }

    #[test]
    fn empty_path_is_an_error_not_unset() {
        std::env::set_var("BJ_ENVCFG_TEST_EMPTYPATH", "  ");
        let err = writable_path_from_env("BJ_ENVCFG_TEST_EMPTYPATH").unwrap_err();
        assert_eq!(err, EnvError::EmptyPath { var: "BJ_ENVCFG_TEST_EMPTYPATH" });
        assert!(err.to_string().contains("set but empty"));
        std::env::remove_var("BJ_ENVCFG_TEST_EMPTYPATH");
    }

    #[test]
    fn unset_variables_are_none_or_default() {
        // A variable name no test or harness ever sets.
        assert_eq!(positive_from_env::<u32>("BJ_ENVCFG_TEST_UNSET"), Ok(None));
        assert_eq!(flag_from_env("BJ_ENVCFG_TEST_UNSET", true), Ok(true));
        assert_eq!(flag_from_env("BJ_ENVCFG_TEST_UNSET", false), Ok(false));
    }

    #[test]
    fn snapshot_flag_accepts_and_rejects_like_prune() {
        // BJ_SNAPSHOT goes through the same flag grammar as BJ_PRUNE.
        assert_eq!(parse_flag("BJ_SNAPSHOT", "1"), Ok(true));
        assert_eq!(parse_flag("BJ_SNAPSHOT", "0"), Ok(false));
        let err = parse_flag("BJ_SNAPSHOT", "fork").unwrap_err();
        assert_eq!(err, EnvError::NotAFlag { var: "BJ_SNAPSHOT", value: "fork".to_string() });
        assert!(err.to_string().contains("BJ_SNAPSHOT"));
        // Unset defaults to on (the optimized path); the harness-facing
        // wrapper only consults the real variable, so it can only be
        // exercised here when the suite's environment leaves it unset.
        if std::env::var("BJ_SNAPSHOT").is_err() {
            assert_eq!(snapshot_from_env(), Ok(true));
        }
    }

    #[test]
    fn earlyexit_flag_accepts_and_rejects_like_snapshot() {
        assert_eq!(parse_flag("BJ_EARLYEXIT", "on"), Ok(true));
        assert_eq!(parse_flag("BJ_EARLYEXIT", "no"), Ok(false));
        let err = parse_flag("BJ_EARLYEXIT", "fast").unwrap_err();
        assert_eq!(err, EnvError::NotAFlag { var: "BJ_EARLYEXIT", value: "fast".to_string() });
        assert!(err.to_string().contains("BJ_EARLYEXIT"));
        if std::env::var("BJ_EARLYEXIT").is_err() {
            assert_eq!(earlyexit_from_env(), Ok(true));
        }
    }

    #[test]
    fn call_depth_rejects_zero_and_defaults_when_unset() {
        assert_eq!(parse_positive::<usize>("BJ_CALL_DEPTH", "3"), Ok(3));
        assert_eq!(parse_positive::<usize>("BJ_CALL_DEPTH", "1"), Ok(1));
        assert_eq!(
            parse_positive::<usize>("BJ_CALL_DEPTH", "0"),
            Err(EnvError::Zero { var: "BJ_CALL_DEPTH" })
        );
        assert_eq!(
            parse_positive::<usize>("BJ_CALL_DEPTH", "deep"),
            Err(EnvError::NotANumber { var: "BJ_CALL_DEPTH", value: "deep".to_string() })
        );
        if std::env::var("BJ_CALL_DEPTH").is_err() {
            assert_eq!(call_depth_from_env(), Ok(DEFAULT_CALL_DEPTH));
        }
    }

    #[test]
    fn metrics_flag_accepts_and_rejects_like_prune() {
        assert_eq!(parse_flag("BJ_METRICS", "1"), Ok(true));
        assert_eq!(parse_flag("BJ_METRICS", "off"), Ok(false));
        let err = parse_flag("BJ_METRICS", "all").unwrap_err();
        assert_eq!(err, EnvError::NotAFlag { var: "BJ_METRICS", value: "all".to_string() });
        assert!(err.to_string().contains("BJ_METRICS"));
        // Unset defaults to off: metrics are opt-in.
        if std::env::var("BJ_METRICS").is_err() {
            assert_eq!(metrics_from_env(), Ok(false));
        }
    }

    #[test]
    fn progress_secs_rejects_zero_and_non_numeric_like_threads() {
        assert_eq!(parse_positive::<u64>("BJ_PROGRESS_SECS", "5"), Ok(5));
        assert_eq!(parse_positive::<u64>("BJ_PROGRESS_SECS", " 1 "), Ok(1));
        assert_eq!(
            parse_positive::<u64>("BJ_PROGRESS_SECS", "0"),
            Err(EnvError::Zero { var: "BJ_PROGRESS_SECS" })
        );
        for bad in ["soon", "-1", "2.5"] {
            assert_eq!(
                parse_positive::<u64>("BJ_PROGRESS_SECS", bad),
                Err(EnvError::NotANumber { var: "BJ_PROGRESS_SECS", value: bad.to_string() }),
                "{bad}"
            );
        }
        if std::env::var("BJ_PROGRESS_SECS").is_err() {
            assert_eq!(progress_secs_from_env(), Ok(None));
        }
    }

    #[test]
    fn fault_kinds_parse_the_universe() {
        use crate::faults::FaultKind;
        assert_eq!(parse_fault_kinds("BJ_FAULT_KINDS", "hard"), Ok(vec![FaultKind::Hard]));
        assert_eq!(
            parse_fault_kinds("BJ_FAULT_KINDS", "hard,transient,intermittent"),
            Ok(vec![
                FaultKind::Hard,
                FaultKind::Transient,
                FaultKind::Intermittent {
                    period: DEFAULT_INTERMITTENT_PERIOD,
                    on: DEFAULT_INTERMITTENT_ON,
                },
            ])
        );
        assert_eq!(
            parse_fault_kinds("BJ_FAULT_KINDS", " transient , intermittent:100:25 "),
            Ok(vec![FaultKind::Transient, FaultKind::Intermittent { period: 100, on: 25 }])
        );
        if std::env::var("BJ_FAULT_KINDS").is_err() {
            assert_eq!(fault_kinds_from_env(), Ok(vec![FaultKind::Hard]));
        }
    }

    #[test]
    fn fault_kinds_reject_malformed_entries() {
        for bad in [
            "soft",
            "",
            "hard,,transient",
            "intermittent:0:0",
            "intermittent:8:9",
            "intermittent:8",
            "intermittent:8:2:1",
            "transient:5",
            "HARD",
        ] {
            let err = parse_fault_kinds("BJ_FAULT_KINDS", bad).unwrap_err();
            assert!(
                matches!(err, EnvError::UnknownKind { var: "BJ_FAULT_KINDS", .. }),
                "{bad:?} gave {err:?}"
            );
            assert!(err.to_string().contains("BJ_FAULT_KINDS"), "{bad:?}");
        }
        // The error names the offending entry, not the whole list.
        let err = parse_fault_kinds("BJ_FAULT_KINDS", "hard,soft").unwrap_err();
        assert_eq!(
            err,
            EnvError::UnknownKind { var: "BJ_FAULT_KINDS", value: "soft".to_string() }
        );
    }

    #[test]
    fn ecc_flag_accepts_and_rejects_like_prune() {
        assert_eq!(parse_flag("BJ_ECC", "1"), Ok(true));
        assert_eq!(parse_flag("BJ_ECC", "off"), Ok(false));
        let err = parse_flag("BJ_ECC", "secded").unwrap_err();
        assert_eq!(err, EnvError::NotAFlag { var: "BJ_ECC", value: "secded".to_string() });
        // Unset defaults to off: the unprotected datapath is the
        // byte-stable legacy configuration.
        if std::env::var("BJ_ECC").is_err() {
            assert_eq!(ecc_from_env(), Ok(false));
        }
    }

    #[test]
    fn stall_cycles_rejects_zero_and_defaults_when_unset() {
        assert_eq!(parse_positive::<u64>("BJ_STALL_CYCLES", "5000"), Ok(5000));
        assert_eq!(
            parse_positive::<u64>("BJ_STALL_CYCLES", "0"),
            Err(EnvError::Zero { var: "BJ_STALL_CYCLES" })
        );
        assert_eq!(
            parse_positive::<u64>("BJ_STALL_CYCLES", "soon"),
            Err(EnvError::NotANumber { var: "BJ_STALL_CYCLES", value: "soon".to_string() })
        );
        if std::env::var("BJ_STALL_CYCLES").is_err() {
            assert_eq!(stall_cycles_from_env(), Ok(DEFAULT_STALL_CYCLES));
        }
    }
}
