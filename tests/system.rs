//! Whole-system integration tests: the paper's qualitative claims must
//! hold end-to-end through the public facade API.
//!
//! These run a subset of benchmarks (the full 16-benchmark sweep lives in
//! the bench harnesses); run with `--release` for speed.

use blackjack::faults::{AreaModel, Corruption, FaultPlan, FaultSite, HardFault, Trigger};
use blackjack::sim::{table1, Core, CoreConfig, Mode};
use blackjack::workloads::{build, Benchmark};
use blackjack::Experiment;

/// Benchmarks that are quick even without misses (for test latency).
const FAST: [Benchmark; 4] =
    [Benchmark::Gzip, Benchmark::Vortex, Benchmark::Facerec, Benchmark::Apsi];

#[test]
fn coverage_gap_holds_across_benchmarks() {
    let area = AreaModel::default();
    let exp = Experiment::new();
    for b in FAST {
        let r = exp.run_benchmark(b);
        let srt = r.srt.stats.total_coverage(&area);
        let bj = r.bj.stats.total_coverage(&area);
        assert!(bj > 0.90, "{b}: BlackJack coverage {bj:.3} below 90%");
        assert!(srt < bj - 0.3, "{b}: SRT coverage {srt:.3} too close to BlackJack {bj:.3}");
        assert_eq!(r.bj.stats.frontend_coverage(), 1.0, "{b}: shuffled frontend must be fully diverse");
        assert_eq!(r.srt.stats.frontend_coverage(), 0.0, "{b}: SRT frontend is never diverse");
    }
}

#[test]
fn performance_ordering_holds() {
    let exp = Experiment::new();
    for b in FAST {
        let r = exp.run_benchmark(b);
        let srt = r.normalized_perf(Mode::Srt);
        let ns = r.normalized_perf(Mode::BlackJackNoShuffle);
        let bj = r.normalized_perf(Mode::BlackJack);
        assert!(srt <= 1.0, "{b}: SRT cannot beat single-thread");
        // Small tolerances: the orderings are statistical, not absolute.
        assert!(ns <= srt + 0.03, "{b}: BlackJack-NS ({ns:.3}) should not beat SRT ({srt:.3})");
        assert!(bj <= ns + 0.03, "{b}: BlackJack ({bj:.3}) should not beat BlackJack-NS ({ns:.3})");
        assert!(bj > 0.15, "{b}: BlackJack slowdown implausibly large ({bj:.3})");
    }
}

#[test]
fn interference_shape_matches_paper() {
    // High-IPC integer benchmarks show the most leading-trailing
    // interference (paper §6.1: gzip/bzip/crafty are the worst).
    let exp = Experiment::new();
    let gzip = exp.run_benchmark(Benchmark::Gzip);
    let apsi = exp.run_benchmark(Benchmark::Apsi);
    assert!(
        gzip.bj.stats.lt_interference() > apsi.bj.stats.lt_interference(),
        "gzip ({:.4}) should out-interfere apsi ({:.4})",
        gzip.bj.stats.lt_interference(),
        apsi.bj.stats.lt_interference()
    );
    // Burstiness is high everywhere but lowest for the high-IPC code.
    assert!(gzip.bj.stats.burstiness() < apsi.bj.stats.burstiness());
    for r in [&gzip, &apsi] {
        assert!(r.bj.stats.burstiness() > 0.4, "burstiness implausibly low");
    }
}

#[test]
fn figure_extractors_are_consistent() {
    let exp = Experiment::new();
    let rows = vec![exp.run_benchmark(Benchmark::Gzip), exp.run_benchmark(Benchmark::Vortex)];
    let result = blackjack::ExperimentResult { rows, area: AreaModel::default() };
    assert_eq!(result.fig4a().len(), 2);
    assert_eq!(result.fig7().len(), 2);
    let t4 = result.fig4_table();
    assert!(t4.contains("gzip") && t4.contains("vortex") && t4.contains("average"));
    let t7 = result.fig7_table();
    assert!(t7.contains("BlackJack-NS"));
    let (srt_cov, bj_cov, slowdown) = result.headline();
    assert!(bj_cov > srt_cov);
    assert!(slowdown > 0.0 && slowdown < 60.0);
}

#[test]
fn end_to_end_detection_story() {
    // The complete narrative: a defective multiplier is *guaranteed*
    // caught by BlackJack on every benchmark, while SRT only ever catches
    // it by accident (and on a serial kernel, provably never).
    let fault = HardFault {
        site: FaultSite::Backend { way: 4 }, // integer multiplier 0
        corruption: Corruption::FlipBit { bit: 11 },
        trigger: Trigger::Always,
    };
    for b in [Benchmark::Bzip, Benchmark::Gcc] {
        let prog = build(b, 1);
        let mut bj =
            Core::new(CoreConfig::with_mode(Mode::BlackJack), &prog, FaultPlan::single(fault));
        let bj_out = bj.run(100_000_000);
        assert!(bj_out.detection().is_some(), "{b}: BlackJack must detect: {bj_out:?}");
    }

    // A serial multiply chain keeps both SRT copies on multiplier 0: the
    // fault corrupts both identically and escapes.
    let serial = blackjack::isa::asm::assemble(
        ".text\n li x20, 0x400000\n li x21, 40\n li x5, 3\nloop:\n mul x5, x5, x5\n ori x5, x5, 3\n sd x5, 0(x20)\n addi x20, x20, 8\n addi x21, x21, -1\n bnez x21, loop\n halt\n",
    )
    .unwrap();
    let mut srt = Core::new(CoreConfig::with_mode(Mode::Srt), &serial, FaultPlan::single(fault));
    let srt_out = srt.run(100_000_000);
    assert!(srt_out.completed(), "SRT must remain oblivious on the serial chain: {srt_out:?}");
    let mut bj =
        Core::new(CoreConfig::with_mode(Mode::BlackJack), &serial, FaultPlan::single(fault));
    let bj_out = bj.run(100_000_000);
    assert!(bj_out.detection().is_some(), "BlackJack must detect on the serial chain");
}

#[test]
fn table1_echoes_configuration() {
    let t = table1(&CoreConfig::default());
    for needle in ["4 instructions/cycle", "512 entries", "32-entries", "64KB", "2M", "350 cycles", "64 entries", "128 entries", "96 entries", "256 instructions", "1024 instructions"] {
        assert!(t.contains(needle), "Table 1 missing `{needle}`:\n{t}");
    }
}

#[test]
fn redundant_modes_commit_identical_work() {
    let exp = Experiment::new();
    let r = exp.run_benchmark(Benchmark::Eon);
    for m in [&r.srt, &r.ns, &r.bj] {
        assert_eq!(m.stats.committed[0], r.single.stats.committed[0]);
        assert_eq!(m.stats.committed[0], m.stats.committed[1]);
        assert!(m.stats.detections.is_empty());
        assert!(m.stats.store_checks > 0, "stores must be checked in redundant modes");
    }
}

#[test]
fn slack_sweep_changes_behavior_sanely() {
    // Slack is the lever SRT uses to hide trailing work; tiny slack should
    // not deadlock and huge slack should not break correctness.
    for slack in [16, 64, 1024] {
        let r = Experiment::new().slack(slack).run_benchmark(Benchmark::Gzip);
        assert!(r.bj.outcome.completed(), "slack {slack} broke BlackJack");
        assert!(
            r.bj.stats.total_coverage(&AreaModel::default()) > 0.85,
            "slack {slack} destroyed coverage"
        );
    }
}
