//! Campaign determinism: the evaluation's output must be bit-identical
//! regardless of how many workers execute it, because results are
//! reassembled in job order (`BJ_THREADS` only changes wall-clock).
//!
//! Uses `Campaign::with_workers` rather than the `BJ_THREADS` environment
//! variable so parallel test binaries never race on the process
//! environment.

use blackjack::{Campaign, Experiment, ExperimentResult};

fn tables(r: &ExperimentResult) -> String {
    let (srt_cov, bj_cov, slowdown) = r.headline();
    format!(
        "{}{}{}{}headline: {srt_cov:.6} {bj_cov:.6} {slowdown:.6}\n",
        r.fig4_table(),
        r.fig5_table(),
        r.fig6_table(),
        r.fig7_table(),
    )
}

#[test]
fn experiment_tables_identical_across_worker_counts() {
    let exp = Experiment::new();
    let serial = tables(&exp.run_all_on(&Campaign::with_workers(1)));
    let parallel = tables(&exp.run_all_on(&Campaign::with_workers(8)));
    assert_eq!(serial, parallel, "worker count changed the evaluation's output");
}

#[test]
fn experiment_tables_identical_across_snapshot_paths() {
    // The snapshot-fork machinery (`BJ_SNAPSHOT`) must be invisible in
    // every report: tables from forked cores match direct cores. One
    // cross-pair (direct @ 1 worker vs forked @ 8) suffices — combined
    // with the worker-count test above (which runs the default, forked,
    // path at 1 and 8 workers), every (path, workers) combination is
    // pinned by transitivity.
    let direct =
        tables(&Experiment::new().with_snapshot(false).run_all_on(&Campaign::with_workers(1)));
    let forked =
        tables(&Experiment::new().with_snapshot(true).run_all_on(&Campaign::with_workers(8)));
    assert_eq!(forked, direct, "snapshot path changed the evaluation's output");
}
