#!/usr/bin/env bash
# Tier-1 verification gate: offline build, full test suite, and a quick
# end-to-end smoke of the figure pipeline. Run from anywhere; exits
# non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --offline

echo "== tier-1: clippy (deny warnings) =="
cargo clippy -q --workspace --offline --all-targets -- -D warnings

echo "== tier-1: test suite =="
cargo test -q --workspace --offline

echo "== tier-1: fig_all smoke (BJ_SCALE=1) =="
BJ_SCALE=1 cargo run --release -q --offline -p blackjack-bench --bin fig_all >/dev/null

echo "verify: OK"
