#!/usr/bin/env bash
# Tier-1 verification gate: offline build, full test suite, and a quick
# end-to-end smoke of the figure pipeline. Run from anywhere; exits
# non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --offline

echo "== tier-1: clippy (deny warnings) =="
cargo clippy -q --workspace --offline --all-targets -- -D warnings

echo "== tier-1: test suite =="
cargo test -q --workspace --offline

echo "== tier-1: bj-lint --deny (16 kernels + call kernels + examples) =="
# Every kernel and example must be statically clean under the
# interprocedural lints; any finding anywhere fails the gate.
cargo run --release -q --offline -p blackjack-bench --bin bj-lint -- \
  --deny examples/programs/*.s >/dev/null

echo "== tier-1: fig_all smoke (BJ_SCALE=1) =="
BJ_SCALE=1 cargo run --release -q --offline -p blackjack-bench --bin fig_all >/dev/null

echo "== tier-1: BJ_TRACE smoke (traced detection run through bj-trace) =="
trace_file="$(mktemp /tmp/bj_trace_smoke.XXXXXX.jsonl)"
trap 'rm -f "$trace_file"' EXIT
# A traced injection run must detect, leave schema-valid JSONL behind,
# and bj-trace must render a non-empty report from it.
BJ_TRACE="$trace_file" cargo run --release -q --offline --bin bjsim -- \
  --quiet --fault backend:4:2 examples/programs/checksum.s | grep -q DETECTED
grep -q '"type":"meta"' "$trace_file"
grep -q '"type":"flight_event"' "$trace_file"
grep -q '"type":"detection"' "$trace_file"
rendered="$(cargo run --release -q --offline -p blackjack-bench --bin bj-trace -- "$trace_file")"
[ -n "$rendered" ]
echo "$rendered" | grep -q "flight recorder:"
echo "$rendered" | grep -q "detection:"

echo "== tier-1: BJ_SNAPSHOT equivalence smoke (ext_detection, gzip) =="
# The fork-at-injection path must be invisible in the report: stdout is
# byte-identical with snapshots off (replay from cycle 0) and on.
snap_off="$(BJ_SCALE=1 BJ_SNAPSHOT=0 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
snap_on="$(BJ_SCALE=1 BJ_SNAPSHOT=1 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
[ -n "$snap_on" ]
diff <(printf '%s' "$snap_off") <(printf '%s' "$snap_on")

echo "== tier-1: bench_snapshot (refreshes BENCH_snapshot.json) =="
# Full-sweep replay-vs-fork timing; asserts the reports match and
# requires the measured speedup recorded in BENCH_snapshot.json.
BJ_SCALE=1 cargo run --release -q --offline -p blackjack-bench --bin bench_snapshot >/dev/null
grep -q '"reports_identical": true' BENCH_snapshot.json

echo "== tier-1: BJ_EARLYEXIT equivalence smoke (ext_detection, gzip) =="
# The early-exit layer must be invisible in the report: stdout is
# byte-identical with every run simulated to its natural end and with
# runs cut the moment their verdict is decided.
ee_off="$(BJ_SCALE=1 BJ_EARLYEXIT=0 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
ee_on="$(BJ_SCALE=1 BJ_EARLYEXIT=1 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
[ -n "$ee_on" ]
diff <(printf '%s' "$ee_off") <(printf '%s' "$ee_on")

echo "== tier-1: bench_earlyexit (refreshes BENCH_earlyexit.json) =="
# Full-sweep full-run-vs-early-exit timing; asserts the reports match
# and records the speedup with per-mechanism attribution.
BJ_SCALE=1 cargo run --release -q --offline -p blackjack-bench --bin bench_earlyexit >/dev/null
grep -q '"reports_identical": true' BENCH_earlyexit.json

echo "== tier-1: bj-bench --check (bench regression gate) =="
# The unified BENCH_*.json documents (just refreshed above) must pass
# their committed tolerances: speedup floors, throughput ratio bounds,
# and the exact early-exit attribution counts.
cargo run --release -q --offline -p blackjack-bench --bin bj-bench -- --check

echo "== tier-1: observability smoke (BJ_METRICS + BJ_PROGRESS_SECS) =="
# A metrics-and-progress run must stream at least one well-formed
# progress record (the guaranteed done:true tick), the phase and metrics
# record families, render through bj-trace top — and leave stdout
# byte-identical to the unobserved run.
obs_file="$(mktemp /tmp/bj_obs_smoke.XXXXXX.jsonl)"
trap 'rm -f "$trace_file" "$obs_file"' EXIT
obs_out="$(BJ_SCALE=1 BJ_METRICS=1 BJ_PROGRESS_SECS=1 BJ_TRACE="$obs_file" \
  cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
plain_out="$(BJ_SCALE=1 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
[ -n "$obs_out" ]
diff <(printf '%s' "$plain_out") <(printf '%s' "$obs_out")
# The final progress tick is guaranteed and carries the full shape.
grep '"type":"progress"' "$obs_file" | tail -1 | grep -q '"done":true'
grep '"type":"progress"' "$obs_file" | tail -1 | grep -q '"jobs_total":'
grep '"type":"progress"' "$obs_file" | tail -1 | grep -q '"nondet":\["elapsed_nanos"'
grep -q '"type":"phase"' "$obs_file"
grep -q '"type":"metrics"' "$obs_file"
top_out="$(cargo run --release -q --offline -p blackjack-bench --bin bj-trace -- top "$obs_file")"
echo "$top_out" | grep -q "campaign:"
echo "$top_out" | grep -q "phase attribution"
echo "$top_out" | grep -q "metrics registry:"

echo "== tier-1: call-kernel equivalence smoke (ext_detection, perlbmk) =="
# The call-bearing kernel's report rows must be byte-identical with
# static pruning on and off (pruning changes only the trailing
# pruned_sites block, stripped here).
pr_off="$(BJ_SCALE=1 BJ_PRUNE=0 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench perlbmk 2>/dev/null | sed '/^pruned_sites/,$d')"
pr_on="$(BJ_SCALE=1 BJ_PRUNE=1 cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench perlbmk 2>/dev/null | sed '/^pruned_sites/,$d')"
[ -n "$pr_on" ]
diff <(printf '%s' "$pr_off") <(printf '%s' "$pr_on")

echo "== tier-1: bj-fuzz smoke (fixed seed, 50 iterations) =="
# Differential fuzz of the core against the interpreter: zero
# mismatches, zero fault-free false detections, all guaranteed-site
# injections detected or masked. Deterministic for the fixed seed.
BJ_FUZZ_ITERS=50 cargo run --release -q --offline -p blackjack-fuzz --bin bj-fuzz -- \
  --seed 0xB1AC --quiet | grep -q "all checks passed"

echo "== tier-1: transient-campaign smoke (ext_detection, worker determinism) =="
# A transient campaign with the ECC layer on must report the CE/DUE/SDC
# taxonomy and be byte-identical for any worker count.
tr_1="$(BJ_SCALE=1 BJ_THREADS=1 BJ_FAULT_KINDS=transient BJ_ECC=1 \
  cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
tr_8="$(BJ_SCALE=1 BJ_THREADS=8 BJ_FAULT_KINDS=transient BJ_ECC=1 \
  cargo run --release -q --offline -p blackjack-bench \
  --bin ext_detection -- --bench gzip 2>/dev/null)"
[ -n "$tr_1" ]
echo "$tr_1" | grep -q "per injected transient fault"
echo "$tr_1" | grep -q "taxonomy (ECC on):"
diff <(printf '%s' "$tr_1") <(printf '%s' "$tr_8")

echo "== tier-1: fault-universe oracle battery (bj-fuzz, all kinds, ECC on) =="
# The soundness battery over the full universe: hard, transient, and
# intermittent plans on every site family with the LVQ SEC-DED layer on
# — every load-value site is guaranteed, so zero escapes anywhere.
BJ_FUZZ_ITERS=50 BJ_FAULT_KINDS=hard,transient,intermittent BJ_ECC=1 \
  cargo run --release -q --offline -p blackjack-fuzz --bin bj-fuzz -- \
  --seed 0xB1AC --quiet | grep -q "all checks passed"

echo "verify: OK"
